package main

import (
	"bytes"
	"strings"
	"testing"
)

// The CLI is exercised through run(), the testable entry point: every
// command writes to the supplied writers and returns an exit code.

func gsum(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return out.String(), errw.String(), code
}

func TestNoArgsShowsUsage(t *testing.T) {
	_, stderr, code := gsum(t)
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Errorf("stderr missing usage: %q", stderr)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, stderr, code := gsum(t, "frobnicate")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown command") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestHelp(t *testing.T) {
	stdout, _, code := gsum(t, "help")
	if code != 0 {
		t.Errorf("exit code %d, want 0", code)
	}
	if !strings.Contains(stdout, "classify") || !strings.Contains(stdout, "estimate") {
		t.Errorf("help output incomplete: %q", stdout)
	}
}

func TestClassifySingleFunction(t *testing.T) {
	// A small witness range keeps the checkers fast.
	stdout, _, code := gsum(t, "classify", "-f", "x^2", "-m", "4096")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout, "x^2") {
		t.Errorf("classification output missing function name: %q", stdout)
	}
	if !strings.Contains(stdout, "slow-jumping") {
		t.Errorf("classification output missing property lines: %q", stdout)
	}
}

func TestClassifyUnknownFunction(t *testing.T) {
	_, stderr, code := gsum(t, "classify", "-f", "nope", "-m", "64")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown function") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestEstimateSerial(t *testing.T) {
	stdout, stderr, code := gsum(t, "estimate", "-n", "1024", "-m", "256", "-items", "100")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"g = x^2", "exact", "1-pass", "relative error"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("estimate output missing %q: %q", want, stdout)
		}
	}
}

func TestEstimateParallelWorkersMatchesSerial(t *testing.T) {
	// Same seed, different worker counts: the sharded engine merges by
	// linearity, so the printed estimates must be identical.
	serial, stderr, code := gsum(t, "estimate", "-n", "1024", "-m", "256", "-items", "80", "-seed", "3")
	if code != 0 {
		t.Fatalf("serial exit code %d, stderr: %s", code, stderr)
	}
	par, stderr, code := gsum(t, "estimate", "-n", "1024", "-m", "256", "-items", "80", "-seed", "3", "-workers", "4")
	if code != 0 {
		t.Fatalf("parallel exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(par, "sharded across 4 workers") {
		t.Errorf("parallel output missing worker line: %q", par)
	}
	// The final estimate line must agree verbatim.
	lastLine := func(s string) string {
		lines := strings.Split(strings.TrimSpace(s), "\n")
		return lines[len(lines)-1]
	}
	if lastLine(serial) != lastLine(par) {
		t.Errorf("parallel estimate diverged:\n serial: %s\n parallel: %s",
			lastLine(serial), lastLine(par))
	}
}

func TestEstimateTwoPassParallel(t *testing.T) {
	stdout, stderr, code := gsum(t, "estimate", "-passes", "2", "-n", "1024", "-m", "256",
		"-items", "80", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2-pass") {
		t.Errorf("output missing 2-pass line: %q", stdout)
	}
}

func TestEstimateBadPasses(t *testing.T) {
	_, stderr, code := gsum(t, "estimate", "-passes", "3")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "-passes must be 1 or 2") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestExperimentsSingle(t *testing.T) {
	stdout, stderr, code := gsum(t, "experiments", "-quick", "-run", "E1")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "E1") {
		t.Errorf("experiment output missing table header: %q", stdout)
	}
}

func TestExperimentsUnknown(t *testing.T) {
	_, stderr, code := gsum(t, "experiments", "-run", "E99")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("stderr: %q", stderr)
	}
}
