package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	universal "repro"
	"repro/internal/daemon"
	"repro/internal/stream"
)

// The CLI is exercised through run(), the testable entry point: every
// command writes to the supplied writers and returns an exit code.

func gsum(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return out.String(), errw.String(), code
}

func TestNoArgsShowsUsage(t *testing.T) {
	_, stderr, code := gsum(t)
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "usage:") {
		t.Errorf("stderr missing usage: %q", stderr)
	}
}

func TestUnknownCommand(t *testing.T) {
	_, stderr, code := gsum(t, "frobnicate")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown command") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestHelp(t *testing.T) {
	stdout, _, code := gsum(t, "help")
	if code != 0 {
		t.Errorf("exit code %d, want 0", code)
	}
	if !strings.Contains(stdout, "classify") || !strings.Contains(stdout, "estimate") {
		t.Errorf("help output incomplete: %q", stdout)
	}
}

func TestClassifySingleFunction(t *testing.T) {
	// A small witness range keeps the checkers fast.
	stdout, _, code := gsum(t, "classify", "-f", "x^2", "-m", "4096")
	if code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if !strings.Contains(stdout, "x^2") {
		t.Errorf("classification output missing function name: %q", stdout)
	}
	if !strings.Contains(stdout, "slow-jumping") {
		t.Errorf("classification output missing property lines: %q", stdout)
	}
}

func TestClassifyUnknownFunction(t *testing.T) {
	_, stderr, code := gsum(t, "classify", "-f", "nope", "-m", "64")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown function") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestEstimateSerial(t *testing.T) {
	stdout, stderr, code := gsum(t, "estimate", "-n", "1024", "-m", "256", "-items", "100")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"g = x^2", "exact", "1-pass", "relative error"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("estimate output missing %q: %q", want, stdout)
		}
	}
}

func TestEstimateParallelWorkersMatchesSerial(t *testing.T) {
	// Same seed, different worker counts: the sharded engine merges by
	// linearity, so the printed estimates must be identical.
	serial, stderr, code := gsum(t, "estimate", "-n", "1024", "-m", "256", "-items", "80", "-seed", "3")
	if code != 0 {
		t.Fatalf("serial exit code %d, stderr: %s", code, stderr)
	}
	par, stderr, code := gsum(t, "estimate", "-n", "1024", "-m", "256", "-items", "80", "-seed", "3", "-workers", "4")
	if code != 0 {
		t.Fatalf("parallel exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(par, "sharded across 4 workers") {
		t.Errorf("parallel output missing worker line: %q", par)
	}
	// The final estimate line must agree verbatim.
	lastLine := func(s string) string {
		lines := strings.Split(strings.TrimSpace(s), "\n")
		return lines[len(lines)-1]
	}
	if lastLine(serial) != lastLine(par) {
		t.Errorf("parallel estimate diverged:\n serial: %s\n parallel: %s",
			lastLine(serial), lastLine(par))
	}
}

func TestEstimateTwoPassParallel(t *testing.T) {
	stdout, stderr, code := gsum(t, "estimate", "-passes", "2", "-n", "1024", "-m", "256",
		"-items", "80", "-workers", "4")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2-pass") {
		t.Errorf("output missing 2-pass line: %q", stdout)
	}
}

func TestEstimateBadPasses(t *testing.T) {
	_, stderr, code := gsum(t, "estimate", "-passes", "3")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "-passes must be 1 or 2") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestExperimentsSingle(t *testing.T) {
	stdout, stderr, code := gsum(t, "experiments", "-quick", "-run", "E1")
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "E1") {
		t.Errorf("experiment output missing table header: %q", stdout)
	}
}

func TestExperimentsUnknown(t *testing.T) {
	_, stderr, code := gsum(t, "experiments", "-run", "E99")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestUnknownSubcommandFlagFailsWithUsage(t *testing.T) {
	for _, sub := range []string{"classify", "estimate", "experiments", "push", "query"} {
		_, stderr, code := gsum(t, sub, "-bogus")
		if code != 2 {
			t.Errorf("%s -bogus: exit code %d, want 2", sub, code)
		}
		if !strings.Contains(stderr, "bogus") {
			t.Errorf("%s -bogus: stderr %q does not name the flag", sub, stderr)
		}
		if !strings.Contains(stderr, "-") || len(stderr) < 40 {
			t.Errorf("%s -bogus: stderr %q missing flag usage listing", sub, stderr)
		}
	}
}

func TestSubcommandHelpExitsZero(t *testing.T) {
	for _, sub := range []string{"classify", "estimate", "experiments", "push", "query"} {
		_, _, code := gsum(t, sub, "-h")
		if code != 0 {
			t.Errorf("%s -h: exit code %d, want 0", sub, code)
		}
	}
}

func TestStrayPositionalArgumentsRejected(t *testing.T) {
	_, stderr, code := gsum(t, "estimate", "junk")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "unexpected arguments") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestPushValidatesShardBounds(t *testing.T) {
	_, stderr, code := gsum(t, "push", "-shard", "3", "-of", "2")
	if code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, "shard") {
		t.Errorf("stderr: %q", stderr)
	}
}

func TestPushQueryAgainstDaemon(t *testing.T) {
	// Full worker -> coordinator round trip through the real CLI code
	// paths: two workers absorb disjoint shards, the coordinator pulls
	// and answers, and the answer matches a single-process run exactly.
	spec := universal.Spec{Kind: universal.KindOnePass, G: "x^2",
		Options: universal.Options{N: 1 << 12, M: 1 << 10, Eps: 0.25, Seed: 42, Lambda: 1.0 / 16}}
	mk := func() *httptest.Server {
		srv, err := daemon.NewServer(spec)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	w1, w2, coord := mk(), mk(), mk()

	for i, w := range []*httptest.Server{w1, w2} {
		stdout, stderr, code := gsum(t, "push", "-addr", w.URL,
			"-seed", "7", "-shard", fmt.Sprint(i), "-of", "2")
		if code != 0 {
			t.Fatalf("push shard %d: exit %d, stderr %s", i, code, stderr)
		}
		if !strings.Contains(stdout, "pushed") {
			t.Errorf("push shard %d stdout: %q", i, stdout)
		}
	}
	stdout, stderr, code := gsum(t, "query", "-addr", coord.URL,
		"-pull", w1.URL+","+w2.URL)
	if code != 0 {
		t.Fatalf("query: exit %d, stderr %s", code, stderr)
	}

	serial, err := universal.Open(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := universal.Process(serial,
		stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: 7}, 90, 1.1)); err != nil {
		t.Fatal(err)
	}

	// The query prints a merge banner followed by the JSON response.
	brace := strings.Index(stdout, "{")
	if brace < 0 {
		t.Fatalf("query output has no JSON object: %q", stdout)
	}
	var resp struct {
		Estimate float64 `json:"estimate"`
	}
	if err := json.Unmarshal([]byte(stdout[brace:]), &resp); err != nil {
		t.Fatalf("query output %q: %v", stdout, err)
	}
	if resp.Estimate != serial.Estimate() {
		t.Errorf("distributed estimate %.17g != serial %.17g", resp.Estimate, serial.Estimate())
	}
}

// --- gsum bench -------------------------------------------------------------

func TestBenchEachWorkloadSerial(t *testing.T) {
	for _, w := range []string{"zipf", "uniform", "needle", "bursty", "permuted"} {
		w := w
		t.Run(w, func(t *testing.T) {
			stdout, stderr, code := gsum(t, "bench", "-workload", w,
				"-n", "4096", "-items", "256", "-len", "20000")
			if code != 0 {
				t.Fatalf("exit %d, stderr %q", code, stderr)
			}
			for _, want := range []string{"workload " + w, "updates/s", "relative error", "exact"} {
				if !strings.Contains(stdout, want) {
					t.Errorf("output missing %q:\n%s", want, stdout)
				}
			}
		})
	}
}

func TestBenchBackendsPrintIdenticalEstimate(t *testing.T) {
	extract := func(stdout string) string {
		for _, line := range strings.Split(stdout, "\n") {
			if strings.HasPrefix(line, "estimate ") {
				return strings.Fields(line)[1]
			}
		}
		t.Fatalf("no estimate line in %q", stdout)
		return ""
	}
	args := []string{"bench", "-workload", "zipf", "-n", "4096", "-items", "128", "-len", "10000", "-seed", "3"}
	serialOut, stderr, code := gsum(t, append(args, "-backend", "serial")...)
	if code != 0 {
		t.Fatalf("serial: exit %d, stderr %q", code, stderr)
	}
	parOut, stderr, code := gsum(t, append(args, "-backend", "parallel", "-workers", "4")...)
	if code != 0 {
		t.Fatalf("parallel: exit %d, stderr %q", code, stderr)
	}
	dmnOut, stderr, code := gsum(t, append(args, "-backend", "daemon", "-workers", "2")...)
	if code != 0 {
		t.Fatalf("daemon: exit %d, stderr %q", code, stderr)
	}
	se, pe, de := extract(serialOut), extract(parOut), extract(dmnOut)
	if se != pe || se != de {
		t.Fatalf("estimates differ: serial %s, parallel %s, daemon %s", se, pe, de)
	}
}

func TestBenchUnknownWorkloadListsCatalog(t *testing.T) {
	_, stderr, code := gsum(t, "bench", "-workload", "nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	for _, w := range []string{"zipf", "uniform", "needle", "bursty", "permuted"} {
		if !strings.Contains(stderr, w) {
			t.Errorf("stderr missing workload %q in catalog listing:\n%s", w, stderr)
		}
	}
}

// TestBenchBackendListPrintsRegistry: `gsum bench -backend list` prints
// every registered backend kind from the registry and exits 0, so the
// CLI surface cannot drift from the code.
func TestBenchBackendListPrintsRegistry(t *testing.T) {
	stdout, stderr, code := gsum(t, "bench", "-backend", "list")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, kind := range universal.Kinds() {
		if !strings.Contains(stdout, kind) {
			t.Errorf("list output missing registered kind %q:\n%s", kind, stdout)
		}
	}
	// The ingestion topologies stay documented alongside.
	for _, topo := range []string{"serial", "parallel", "sharded", "daemon"} {
		if !strings.Contains(stdout, topo) {
			t.Errorf("list output missing topology %q:\n%s", topo, stdout)
		}
	}
	// The kind lines come straight from the sorted registry, in order —
	// the same golden shape gsumd's -backend list prints.
	var lines []string
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "  ") {
			lines = append(lines, line)
		}
	}
	kinds := universal.Kinds()
	if !sort.StringsAreSorted(kinds) {
		t.Fatal("Kinds() is not sorted")
	}
	if len(lines) != len(kinds) {
		t.Fatalf("%d kind lines for %d kinds:\n%s", len(lines), len(kinds), stdout)
	}
	for i, k := range kinds {
		want := fmt.Sprintf("  %-12s %s", k, universal.Describe(universal.Kind(k)))
		if lines[i] != want {
			t.Errorf("kind line %d = %q, want %q", i, lines[i], want)
		}
	}
}

// TestBenchConfigFileMatchesFlags: `gsum bench -config spec.json` takes
// the estimator side from the file; a file that pins exactly the
// flag-derived configuration must reproduce the flag run's estimate bit
// for bit (the round trip through ParseSpec changes nothing).
func TestBenchConfigFileMatchesFlags(t *testing.T) {
	extract := func(stdout string) string {
		for _, line := range strings.Split(stdout, "\n") {
			if strings.HasPrefix(line, "estimate ") {
				return strings.Fields(line)[1]
			}
		}
		t.Fatalf("no estimate line in %q", stdout)
		return ""
	}
	args := []string{"bench", "-workload", "zipf", "-n", "4096", "-items", "128", "-len", "10000", "-seed", "3"}
	flagOut, stderr, code := gsum(t, args...)
	if code != 0 {
		t.Fatalf("flag run: exit %d, stderr %q", code, stderr)
	}

	// The Spec a daemon fleet would share: the same configuration the
	// flags above derive (sketch seed = stream seed * 7).
	spec := universal.Spec{
		Kind: universal.KindOnePass, G: "x^2",
		Options: universal.Options{N: 4096, M: 1 << 10, Eps: 0.25, Seed: 21, Lambda: 1.0 / 16},
	}
	blob, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	// Contradictory -f and -eps flags prove the file wins.
	fileOut, stderr, code := gsum(t, append(args, "-config", path, "-f", "x^3", "-eps", "0.5")...)
	if code != 0 {
		t.Fatalf("config run: exit %d, stderr %q", code, stderr)
	}
	if fe, we := extract(fileOut), extract(flagOut); fe != we {
		t.Fatalf("config-file estimate %s != flag estimate %s", fe, we)
	}
	if !strings.Contains(fileOut, "g = x^2") {
		t.Errorf("config run did not use the file's function:\n%s", fileOut)
	}

	_, stderr, code = gsum(t, "bench", "-config", filepath.Join(t.TempDir(), "absent.json"))
	if code != 2 {
		t.Fatalf("missing config: exit %d, want 2 (stderr %q)", code, stderr)
	}
}

// TestBenchShardedBackend: the sharded hot path is reachable from the
// CLI and prints the same estimate as serial.
func TestBenchShardedBackend(t *testing.T) {
	extract := func(stdout string) string {
		for _, line := range strings.Split(stdout, "\n") {
			if strings.HasPrefix(line, "estimate ") {
				return strings.Fields(line)[1]
			}
		}
		t.Fatalf("no estimate line in %q", stdout)
		return ""
	}
	args := []string{"bench", "-workload", "zipf", "-n", "4096", "-items", "128", "-len", "10000", "-seed", "3"}
	serialOut, stderr, code := gsum(t, append(args, "-backend", "serial")...)
	if code != 0 {
		t.Fatalf("serial: exit %d, stderr %q", code, stderr)
	}
	shOut, stderr, code := gsum(t, append(args, "-backend", "sharded", "-workers", "4")...)
	if code != 0 {
		t.Fatalf("sharded: exit %d, stderr %q", code, stderr)
	}
	if se, he := extract(serialOut), extract(shOut); se != he {
		t.Fatalf("sharded estimate %s != serial %s", he, se)
	}
	if !strings.Contains(shOut, "backend sharded") {
		t.Errorf("output does not name the sharded backend:\n%s", shOut)
	}
}

func TestBenchUnknownBackendFails(t *testing.T) {
	// Usage errors exit 2, matching unknown -workload and unknown -f.
	_, stderr, code := gsum(t, "bench", "-backend", "bogus", "-n", "1024", "-items", "64", "-len", "1000")
	if code != 2 {
		t.Fatalf("exit %d, want 2 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "unknown backend") || !strings.Contains(stderr, "daemon") {
		t.Errorf("stderr should name the backend catalog: %q", stderr)
	}
}

// TestBenchWindowedRunsOnTwoScenarios: `gsum bench -window` runs end to
// end on two workload scenarios and prints the window line.
func TestBenchWindowedRunsOnTwoScenarios(t *testing.T) {
	for _, w := range []string{"zipf", "bursty"} {
		stdout, stderr, code := gsum(t, "bench", "-workload", w, "-window", "8",
			"-ticks", "32", "-n", "4096", "-items", "128", "-len", "8000", "-seed", "3")
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr %q", w, code, stderr)
		}
		if !strings.Contains(stdout, "window: last 8 of 32 ticks") {
			t.Fatalf("%s: missing window line in output:\n%s", w, stdout)
		}
		if !strings.Contains(stdout, "estimate ") {
			t.Fatalf("%s: missing estimate line:\n%s", w, stdout)
		}
	}
}

// TestBenchWindowedBackendsPrintIdenticalEstimate is the windowed
// three-backend equality at the CLI level.
func TestBenchWindowedBackendsPrintIdenticalEstimate(t *testing.T) {
	extract := func(stdout string) string {
		for _, line := range strings.Split(stdout, "\n") {
			if strings.HasPrefix(line, "estimate ") {
				return strings.Fields(line)[1]
			}
		}
		t.Fatalf("no estimate line in %q", stdout)
		return ""
	}
	args := []string{"bench", "-workload", "zipf", "-window", "6", "-ticks", "24",
		"-n", "4096", "-items", "128", "-len", "8000", "-seed", "3"}
	serialOut, stderr, code := gsum(t, append(args, "-backend", "serial")...)
	if code != 0 {
		t.Fatalf("serial: exit %d, stderr %q", code, stderr)
	}
	parOut, stderr, code := gsum(t, append(args, "-backend", "parallel", "-workers", "3")...)
	if code != 0 {
		t.Fatalf("parallel: exit %d, stderr %q", code, stderr)
	}
	dmnOut, stderr, code := gsum(t, append(args, "-backend", "daemon", "-workers", "2")...)
	if code != 0 {
		t.Fatalf("daemon: exit %d, stderr %q", code, stderr)
	}
	se, pe, de := extract(serialOut), extract(parOut), extract(dmnOut)
	if se != pe || se != de {
		t.Fatalf("windowed estimates differ: serial %s, parallel %s, daemon %s", se, pe, de)
	}
}

// TestBenchWindowKReducesStaleness: raising -windowk tightens the
// stale-tick margin (the space/freshness tradeoff the README documents).
func TestBenchWindowKReducesStaleness(t *testing.T) {
	stale := func(k string) string {
		stdout, stderr, code := gsum(t, "bench", "-workload", "zipf", "-window", "6",
			"-ticks", "24", "-n", "4096", "-items", "128", "-len", "8000", "-seed", "3",
			"-windowk", k)
		if code != 0 {
			t.Fatalf("windowk %s: exit %d, stderr %q", k, code, stderr)
		}
		for _, line := range strings.Split(stdout, "\n") {
			if strings.HasPrefix(line, "window: ") {
				return line
			}
		}
		t.Fatalf("no window line in %q", stdout)
		return ""
	}
	k2, k4 := stale("2"), stale("4")
	if !strings.Contains(k2, "2 stale tick(s)") {
		t.Fatalf("windowk 2: unexpected staleness line %q", k2)
	}
	if !strings.Contains(k4, "0 stale tick(s)") {
		t.Fatalf("windowk 4: unexpected staleness line %q", k4)
	}
}

// TestBenchWindowFlagValidation: nonsense window/tick values exit 2.
func TestBenchWindowFlagValidation(t *testing.T) {
	_, stderr, code := gsum(t, "bench", "-window", "-1")
	if code != 2 || !strings.Contains(stderr, "-window") {
		t.Fatalf("exit %d stderr %q, want usage failure", code, stderr)
	}
	if _, _, code := gsum(t, "bench", "-ticks", "0"); code != 2 {
		t.Fatalf("-ticks 0 accepted (exit %d)", code)
	}
}
