// Command gsum is the command-line front end of the reproduction:
//
//	gsum classify                 classify the paper's function catalog
//	gsum classify -f x^2          classify one named catalog function
//	gsum estimate [flags]         estimate a g-SUM on a generated stream
//	gsum experiments [-quick]     run the full E1-E12 experiment suite
//	gsum experiments -run E4      run a single experiment
//
// Every run is deterministic given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "classify":
		runClassify(os.Args[2:])
	case "estimate":
		runEstimate(os.Args[2:])
	case "experiments":
		runExperiments(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gsum: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  gsum classify [-f name] [-m max]   zero-one-law classification
  gsum estimate [flags]              estimate g-SUM on a generated stream
  gsum experiments [-quick] [-run E#] reproduce the paper's experiments
`)
}

func catalogByName() map[string]gfunc.Func {
	m := make(map[string]gfunc.Func)
	for _, e := range gfunc.Catalog() {
		m[e.Func.Name()] = e.Func
	}
	return m
}

func runClassify(args []string) {
	fs := flag.NewFlagSet("classify", flag.ExitOnError)
	name := fs.String("f", "", "classify only the named catalog function")
	m := fs.Uint64("m", 1<<20, "witness search range [1, m]")
	fs.Parse(args)

	cfg := gfunc.DefaultCheckConfig()
	cfg.M = *m
	if *name != "" {
		g, ok := catalogByName()[*name]
		if !ok {
			fmt.Fprintf(os.Stderr, "gsum: unknown function %q; available:\n", *name)
			for _, e := range gfunc.Catalog() {
				fmt.Fprintf(os.Stderr, "  %s\n", e.Func.Name())
			}
			os.Exit(2)
		}
		c := gfunc.Classify(g, cfg)
		fmt.Println(c.String())
		fmt.Printf("  slow-jumping:   mid=%.3f top=%.3f witness %s\n",
			c.SlowJumping.MidExponent, c.SlowJumping.TopExponent, c.SlowJumping.Witness)
		fmt.Printf("  slow-dropping:  mid=%.3f top=%.3f witness %s\n",
			c.SlowDropping.MidExponent, c.SlowDropping.TopExponent, c.SlowDropping.Witness)
		fmt.Printf("  predictable:    mid=%.3f top=%.3f witness %s\n",
			c.Predictable.MidExponent, c.Predictable.TopExponent, c.Predictable.Witness)
		fmt.Printf("  nearly periodic: mid=%.3f top=%.3f witness %s\n",
			c.NearlyPeriodic.MidExponent, c.NearlyPeriodic.TopExponent, c.NearlyPeriodic.Witness)
		return
	}
	for _, e := range gfunc.Catalog() {
		fmt.Println(gfunc.Classify(e.Func, cfg).String())
	}
}

func runEstimate(args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	fname := fs.String("f", "x^2", "catalog function to sum")
	n := fs.Uint64("n", 1<<12, "domain size")
	m := fs.Int64("m", 1<<10, "max |frequency|")
	items := fs.Int("items", 400, "distinct items")
	alpha := fs.Float64("alpha", 1.1, "zipf exponent")
	eps := fs.Float64("eps", 0.25, "target accuracy")
	seed := fs.Uint64("seed", 1, "random seed")
	passes := fs.Int("passes", 1, "1 or 2 passes")
	fs.Parse(args)

	g, ok := catalogByName()[*fname]
	if !ok {
		fmt.Fprintf(os.Stderr, "gsum: unknown function %q\n", *fname)
		os.Exit(2)
	}
	s := stream.Zipf(stream.GenConfig{N: *n, M: *m, Seed: *seed}, *items, *alpha)
	exact := core.NewExact(g)
	exact.Process(s)
	truth := exact.Estimate()

	opts := core.Options{N: *n, M: *m, Eps: *eps, Seed: *seed * 7}
	var est float64
	var space int
	switch *passes {
	case 1:
		e := core.NewOnePass(g, opts)
		e.Process(s)
		est, space = e.Estimate(), e.SpaceBytes()
	case 2:
		e := core.NewTwoPass(g, opts)
		est = e.Run(s)
		space = e.SpaceBytes()
	default:
		fmt.Fprintln(os.Stderr, "gsum: -passes must be 1 or 2")
		os.Exit(2)
	}
	fmt.Printf("g = %s over zipf(n=%d, M=%d, items=%d, alpha=%.2f)\n",
		g.Name(), *n, *m, *items, *alpha)
	fmt.Printf("exact   %.6g  (%d bytes)\n", truth, exact.SpaceBytes())
	fmt.Printf("%d-pass  %.6g  (%d bytes), relative error %.4f\n",
		*passes, est, space, util.RelErr(est, truth))
}

func runExperiments(args []string) {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	quick := fs.Bool("quick", false, "shrink workloads for a fast pass")
	run := fs.String("run", "", "run a single experiment, e.g. E4")
	fs.Parse(args)

	if *run != "" {
		id := strings.ToUpper(*run)
		for _, t := range experiments.All(*quick) {
			if t.ID == id {
				t.Render(os.Stdout)
				return
			}
		}
		fmt.Fprintf(os.Stderr, "gsum: unknown experiment %q (E1..E12)\n", *run)
		os.Exit(2)
	}
	for _, t := range experiments.All(*quick) {
		t.Render(os.Stdout)
	}
}
