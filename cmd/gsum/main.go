// Command gsum is the command-line front end of the reproduction:
//
//	gsum classify                 classify the paper's function catalog
//	gsum classify -f x^2          classify one named catalog function
//	gsum estimate [flags]         estimate a g-SUM on a generated stream
//	gsum estimate -workers 8      ... with sharded parallel ingestion
//	gsum experiments [-quick]     run the full E1-E15 experiment suite
//	gsum experiments -run E4      run a single experiment
//
// Every run is deterministic given -seed (and, for estimate, -workers:
// the sharded engine merges by linearity, so worker count does not
// change the counters — see internal/engine).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the CLI. It is the testable entry point: everything is
// written to the given writers and the exit code is returned instead of
// calling os.Exit.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		usage(stderr)
		return 2
	}
	switch argv[0] {
	case "classify":
		return runClassify(argv[1:], stdout, stderr)
	case "estimate":
		return runEstimate(argv[1:], stdout, stderr)
	case "experiments":
		return runExperiments(argv[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "gsum: unknown command %q\n", argv[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  gsum classify [-f name] [-m max]    zero-one-law classification
  gsum estimate [flags]               estimate g-SUM on a generated stream
  gsum experiments [-quick] [-run E#] reproduce the paper's experiments
`)
}

func catalogByName() map[string]gfunc.Func {
	m := make(map[string]gfunc.Func)
	for _, e := range gfunc.Catalog() {
		m[e.Func.Name()] = e.Func
	}
	return m
}

func runClassify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("f", "", "classify only the named catalog function")
	m := fs.Uint64("m", 1<<20, "witness search range [1, m]")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := gfunc.DefaultCheckConfig()
	cfg.M = *m
	if *name != "" {
		g, ok := catalogByName()[*name]
		if !ok {
			fmt.Fprintf(stderr, "gsum: unknown function %q; available:\n", *name)
			for _, e := range gfunc.Catalog() {
				fmt.Fprintf(stderr, "  %s\n", e.Func.Name())
			}
			return 2
		}
		c := gfunc.Classify(g, cfg)
		fmt.Fprintln(stdout, c.String())
		fmt.Fprintf(stdout, "  slow-jumping:   mid=%.3f top=%.3f witness %s\n",
			c.SlowJumping.MidExponent, c.SlowJumping.TopExponent, c.SlowJumping.Witness)
		fmt.Fprintf(stdout, "  slow-dropping:  mid=%.3f top=%.3f witness %s\n",
			c.SlowDropping.MidExponent, c.SlowDropping.TopExponent, c.SlowDropping.Witness)
		fmt.Fprintf(stdout, "  predictable:    mid=%.3f top=%.3f witness %s\n",
			c.Predictable.MidExponent, c.Predictable.TopExponent, c.Predictable.Witness)
		fmt.Fprintf(stdout, "  nearly periodic: mid=%.3f top=%.3f witness %s\n",
			c.NearlyPeriodic.MidExponent, c.NearlyPeriodic.TopExponent, c.NearlyPeriodic.Witness)
		return 0
	}
	for _, e := range gfunc.Catalog() {
		fmt.Fprintln(stdout, gfunc.Classify(e.Func, cfg).String())
	}
	return 0
}

func runEstimate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("estimate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fname := fs.String("f", "x^2", "catalog function to sum")
	n := fs.Uint64("n", 1<<12, "domain size")
	m := fs.Int64("m", 1<<10, "max |frequency|")
	items := fs.Int("items", 400, "distinct items")
	alpha := fs.Float64("alpha", 1.1, "zipf exponent")
	eps := fs.Float64("eps", 0.25, "target accuracy")
	seed := fs.Uint64("seed", 1, "random seed")
	passes := fs.Int("passes", 1, "1 or 2 passes")
	workers := fs.Int("workers", 1, "ingestion workers (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g, ok := catalogByName()[*fname]
	if !ok {
		fmt.Fprintf(stderr, "gsum: unknown function %q\n", *fname)
		return 2
	}
	s := stream.Zipf(stream.GenConfig{N: *n, M: *m, Seed: *seed}, *items, *alpha)
	exact := core.NewExact(g)
	exact.Process(s)
	truth := exact.Estimate()

	opts := core.Options{N: *n, M: *m, Eps: *eps, Seed: *seed * 7}
	var est float64
	var space int
	switch *passes {
	case 1:
		e := core.NewOnePass(g, opts)
		if *workers == 1 {
			e.Process(s)
		} else if err := e.ProcessParallel(s, *workers); err != nil {
			fmt.Fprintf(stderr, "gsum: %v\n", err)
			return 1
		}
		est, space = e.Estimate(), e.SpaceBytes()
	case 2:
		e := core.NewTwoPass(g, opts)
		if *workers == 1 {
			est = e.Run(s)
		} else {
			var err error
			if est, err = e.RunParallel(s, *workers); err != nil {
				fmt.Fprintf(stderr, "gsum: %v\n", err)
				return 1
			}
		}
		space = e.SpaceBytes()
	default:
		fmt.Fprintln(stderr, "gsum: -passes must be 1 or 2")
		return 2
	}
	fmt.Fprintf(stdout, "g = %s over zipf(n=%d, M=%d, items=%d, alpha=%.2f)\n",
		g.Name(), *n, *m, *items, *alpha)
	if *workers != 1 {
		fmt.Fprintf(stdout, "ingestion: sharded across %d workers (merged by linearity)\n",
			engine.Workers(*workers))
	}
	fmt.Fprintf(stdout, "exact   %.6g  (%d bytes)\n", truth, exact.SpaceBytes())
	fmt.Fprintf(stdout, "%d-pass  %.6g  (%d bytes), relative error %.4f\n",
		*passes, est, space, util.RelErr(est, truth))
	return 0
}

func runExperiments(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "shrink workloads for a fast pass")
	run := fs.String("run", "", "run a single experiment, e.g. E4")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *run != "" {
		id := strings.ToUpper(*run)
		for _, r := range experiments.Runners() {
			if r.ID == id {
				t := r.Run(*quick)
				t.Render(stdout)
				return 0
			}
		}
		fmt.Fprintf(stderr, "gsum: unknown experiment %q (E1..E15)\n", *run)
		return 2
	}
	for _, t := range experiments.All(*quick) {
		t.Render(stdout)
	}
	return 0
}
