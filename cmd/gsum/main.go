// Command gsum is the command-line front end of the reproduction:
//
//	gsum classify                 classify the paper's function catalog
//	gsum classify -f x^2          classify one named catalog function
//	gsum estimate [flags]         estimate a g-SUM on a generated stream
//	gsum estimate -workers 8      ... with sharded parallel ingestion
//	gsum bench -workload zipf     benchmark a workload scenario end to end
//	gsum bench -backend daemon    ... through an in-process gsumd topology
//	gsum bench -backend list      print the registered backend kinds
//	gsum bench -window 8          ... estimating only the last 8 ticks
//	gsum sweep -f sweep.json      run a workload x backend x eps matrix
//	gsum sweep -smoke             ... the built-in small smoke matrix
//	gsum experiments [-quick]     run the full E1-E15 experiment suite
//	gsum experiments -run E4      run a single experiment
//	gsum push [flags]             push a stream shard to a gsumd daemon
//	gsum query [flags]            query a gsumd daemon's estimate
//
// Every run is deterministic given -seed (and, for estimate, -workers:
// the sharded engine merges by linearity, so worker count does not
// change the counters — see internal/engine).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	universal "repro"
	"repro/internal/cliflag"
	"repro/internal/daemon"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/util"
	"repro/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the CLI. It is the testable entry point: everything is
// written to the given writers and the exit code is returned instead of
// calling os.Exit.
func run(argv []string, stdout, stderr io.Writer) int {
	if len(argv) < 1 {
		usage(stderr)
		return 2
	}
	switch argv[0] {
	case "classify":
		return runClassify(argv[1:], stdout, stderr)
	case "estimate":
		return runEstimate(argv[1:], stdout, stderr)
	case "bench":
		return runBench(argv[1:], stdout, stderr)
	case "sweep":
		return runSweep(argv[1:], stdout, stderr)
	case "experiments":
		return runExperiments(argv[1:], stdout, stderr)
	case "push":
		return runPush(argv[1:], stdout, stderr)
	case "query":
		return runQuery(argv[1:], stdout, stderr)
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "gsum: unknown command %q\n", argv[0])
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  gsum classify [-f name] [-m max]    zero-one-law classification
  gsum estimate [flags]               estimate g-SUM on a generated stream
  gsum bench [flags]                  benchmark a workload scenario end to end
  gsum sweep -f CONFIG | -smoke       run a sweep matrix across worker processes
  gsum experiments [-quick] [-run E#] reproduce the paper's experiments
  gsum push -addr URL [flags]         push a stream shard to a gsumd daemon
  gsum query -addr URL [flags]        query a gsumd daemon's estimate
`)
}

func catalogByName() map[string]gfunc.Func {
	m := make(map[string]gfunc.Func)
	for _, e := range gfunc.Catalog() {
		m[e.Func.Name()] = e.Func
	}
	return m
}

func runClassify(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("f", "", "classify only the named catalog function")
	m := fs.Uint64("m", 1<<20, "witness search range [1, m]")
	if code, ok := cliflag.Parse(fs, args, stderr); !ok {
		return code
	}

	cfg := gfunc.DefaultCheckConfig()
	cfg.M = *m
	if *name != "" {
		g, ok := catalogByName()[*name]
		if !ok {
			fmt.Fprintf(stderr, "gsum: unknown function %q; available:\n", *name)
			for _, e := range gfunc.Catalog() {
				fmt.Fprintf(stderr, "  %s\n", e.Func.Name())
			}
			return 2
		}
		c := gfunc.Classify(g, cfg)
		fmt.Fprintln(stdout, c.String())
		fmt.Fprintf(stdout, "  slow-jumping:   mid=%.3f top=%.3f witness %s\n",
			c.SlowJumping.MidExponent, c.SlowJumping.TopExponent, c.SlowJumping.Witness)
		fmt.Fprintf(stdout, "  slow-dropping:  mid=%.3f top=%.3f witness %s\n",
			c.SlowDropping.MidExponent, c.SlowDropping.TopExponent, c.SlowDropping.Witness)
		fmt.Fprintf(stdout, "  predictable:    mid=%.3f top=%.3f witness %s\n",
			c.Predictable.MidExponent, c.Predictable.TopExponent, c.Predictable.Witness)
		fmt.Fprintf(stdout, "  nearly periodic: mid=%.3f top=%.3f witness %s\n",
			c.NearlyPeriodic.MidExponent, c.NearlyPeriodic.TopExponent, c.NearlyPeriodic.Witness)
		return 0
	}
	for _, e := range gfunc.Catalog() {
		fmt.Fprintln(stdout, gfunc.Classify(e.Func, cfg).String())
	}
	return 0
}

func runEstimate(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("estimate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fname := fs.String("f", "x^2", "catalog function to sum")
	n := fs.Uint64("n", 1<<12, "domain size")
	m := fs.Int64("m", 1<<10, "max |frequency|")
	items := fs.Int("items", 400, "distinct items")
	alpha := fs.Float64("alpha", 1.1, "zipf exponent")
	eps := fs.Float64("eps", 0.25, "target accuracy")
	seed := fs.Uint64("seed", 1, "random seed")
	passes := fs.Int("passes", 1, "1 or 2 passes")
	workers := fs.Int("workers", 1, "ingestion workers (0 = GOMAXPROCS, 1 = serial)")
	if code, ok := cliflag.Parse(fs, args, stderr); !ok {
		return code
	}

	g, ok := catalogByName()[*fname]
	if !ok {
		fmt.Fprintf(stderr, "gsum: unknown function %q\n", *fname)
		return 2
	}
	s := stream.Zipf(stream.GenConfig{N: *n, M: *m, Seed: *seed}, *items, *alpha)

	// Both the ground truth and the sketch resolve through the registry:
	// the exact baseline is just another Spec kind.
	exact, err := universal.Open(universal.Spec{Kind: universal.KindExact, G: *fname,
		Options: universal.Options{N: *n, M: *m, Seed: *seed}})
	if err != nil {
		fmt.Fprintf(stderr, "gsum: %v\n", err)
		return 1
	}
	if err := universal.Process(exact, s); err != nil {
		fmt.Fprintf(stderr, "gsum: %v\n", err)
		return 1
	}
	truth := exact.Estimate()

	var kind universal.Kind
	switch *passes {
	case 1:
		if kind = universal.KindOnePass; *workers != 1 {
			kind = universal.KindParallel
		}
	case 2:
		kind = universal.KindTwoPass
	default:
		fmt.Fprintln(stderr, "gsum: -passes must be 1 or 2")
		return 2
	}
	e, err := universal.Open(universal.Spec{Kind: kind, G: *fname,
		Options: universal.Options{N: *n, M: *m, Eps: *eps, Seed: *seed * 7},
		Workers: *workers})
	if err != nil {
		fmt.Fprintf(stderr, "gsum: %v\n", err)
		return 1
	}
	if err := universal.Process(e, s); err != nil {
		fmt.Fprintf(stderr, "gsum: %v\n", err)
		return 1
	}
	est, space := e.Estimate(), e.SpaceBytes()
	fmt.Fprintf(stdout, "g = %s over zipf(n=%d, M=%d, items=%d, alpha=%.2f)\n",
		g.Name(), *n, *m, *items, *alpha)
	if *workers != 1 {
		fmt.Fprintf(stdout, "ingestion: sharded across %d workers (merged by linearity)\n",
			engine.Workers(*workers))
	}
	fmt.Fprintf(stdout, "exact   %.6g  (%d bytes)\n", truth, exact.SpaceBytes())
	fmt.Fprintf(stdout, "%d-pass  %.6g  (%d bytes), relative error %.4f\n",
		*passes, est, space, util.RelErr(est, truth))
	return 0
}

// runBench drives one workload scenario through one ingestion backend
// and reports throughput plus estimate-vs-exact accuracy. It is the CLI
// face of internal/workload: `gsum bench -workload zipf -backend daemon
// -workers 4` spins up an in-process worker/coordinator gsumd topology
// and exercises the full distributed path end to end.
func runBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wname := fs.String("workload", "zipf", "scenario: "+strings.Join(workload.Names(), ", "))
	fname := fs.String("f", "x^2", "catalog function to sum")
	n := fs.Uint64("n", 1<<16, "domain size")
	items := fs.Int("items", 4096, "working-set cardinality (distinct items)")
	length := fs.Int("len", 1<<17, "stream length (updates)")
	alpha := fs.Float64("alpha", 1.1, "zipf/bursty skew exponent")
	eps := fs.Float64("eps", 0.25, "target accuracy")
	seed := fs.Uint64("seed", 1, "random seed (stream and sketch)")
	workers := fs.Int("workers", 1, "shards for parallel (0 = GOMAXPROCS) / worker daemons for daemon (min 1)")
	backend := fs.String("backend", "serial", "ingestion backend: "+strings.Join(workload.Backends, ", ")+
		` ("list" prints the registered backend kinds and exits)`)
	transport := fs.String("transport", "json", `daemon backend wire transport: "json" (per-batch POSTs) or "stream" (persistent binary frames)`)
	win := fs.Int("window", 0, "sliding-window mode: estimate only the last W ticks (0 = whole stream)")
	ticks := fs.Int("ticks", workload.DefaultTicks, "tick span of the generated stream (windowed mode)")
	windowk := fs.Int("windowk", 0, "histogram buckets per span class: higher = fewer stale ticks, more space (0 = default 2)")
	trace := fs.String("trace", "", "CSV file for the trace workload (item[,delta] per line; default: embedded trace)")
	configPath := fs.String("config", "", "path to a Spec JSON file (the shape gsumd serves at /v1/config); sets the estimator side (-f, -eps, -window, -windowk, -workers and the sketch seed) so a bench provably matches a deployed daemon fleet")
	if code, ok := cliflag.Parse(fs, args, stderr); !ok {
		return code
	}
	// A Spec file pins the estimator configuration; the workload side
	// (-workload, -n, -len, -seed for the stream) stays on flags.
	var fileSpec *universal.Spec
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintf(stderr, "gsum bench: -config: %v\n", err)
			return 2
		}
		sp, err := universal.ParseSpec(data)
		if err != nil {
			fmt.Fprintf(stderr, "gsum bench: -config %s: %v\n", *configPath, err)
			return 2
		}
		fileSpec = &sp
		*fname = sp.G
		*eps = sp.Options.Eps
		*win = int(sp.Window.W)
		*windowk = sp.Window.K
		if sp.Workers != 0 {
			*workers = sp.Workers
		}
	}
	if *win < 0 || *ticks < 1 {
		fmt.Fprintln(stderr, "gsum bench: -window must be >= 0 and -ticks >= 1")
		return 2
	}
	// Field-by-field validation of the user's scenario, surfaced as flag
	// errors — a bad -items is a message, not a silently substituted
	// default deep inside a generator.
	cfg := workload.Config{N: *n, Items: *items, Length: *length, Seed: *seed, Ticks: *ticks}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(stderr, "gsum bench: %v\n", err)
		return 2
	}
	if err := workload.ValidateAlpha(*alpha); err != nil {
		fmt.Fprintf(stderr, "gsum bench: %v\n", err)
		return 2
	}

	if *backend == "list" {
		// Straight from the registry, so this listing cannot drift from
		// the code (satellite of the Spec/Open redesign).
		fmt.Fprintln(stdout, "registered backend kinds:")
		for _, k := range universal.Kinds() {
			fmt.Fprintf(stdout, "  %-12s %s\n", k, universal.Describe(universal.Kind(k)))
		}
		fmt.Fprintf(stdout, "ingestion topologies for -backend: %s\n", strings.Join(workload.Backends, ", "))
		return 0
	}

	validBackend := false
	for _, b := range workload.Backends {
		if *backend == b {
			validBackend = true
			break
		}
	}
	if !validBackend {
		fmt.Fprintf(stderr, "gsum: unknown backend %q; available: %s\n",
			*backend, strings.Join(workload.Backends, ", "))
		return 2
	}

	g, ok := catalogByName()[*fname]
	if !ok {
		fmt.Fprintf(stderr, "gsum: unknown function %q\n", *fname)
		return 2
	}
	gen, ok := workload.Lookup(*wname)
	if !ok {
		fmt.Fprintf(stderr, "gsum: unknown workload %q; available:\n", *wname)
		for _, w := range workload.Generators() {
			fmt.Fprintf(stderr, "  %-9s %s\n", w.Name(), w.Description())
		}
		return 2
	}
	// Honor -alpha for the skewed scenarios without disturbing the rest,
	// aim the adversarial scenario at the seed this command derives the
	// sketch from, and point the trace scenario at -trace.
	switch *wname {
	case "zipf":
		gen = workload.Zipf{Alpha: *alpha}
	case "bursty":
		gen = workload.Bursty{Alpha: *alpha}
	case "permuted":
		gen = workload.PermutedReplay{Inner: workload.Zipf{Alpha: *alpha}}
	case "diurnal":
		gen = workload.Diurnal{Alpha: *alpha}
	case "adversarial":
		gen = workload.Adversarial{SketchSeed: *seed * 7}
	case "trace":
		tr := workload.TraceReplay{Path: *trace}
		if err := tr.Validate(); err != nil {
			fmt.Fprintf(stderr, "gsum bench: %v\n", err)
			return 2
		}
		gen = tr
	}

	opts := universal.Options{M: 1 << 10, Eps: *eps, Seed: *seed * 7, Lambda: 1.0 / 16}
	if fileSpec != nil {
		// The file's resolved Options ARE the estimator configuration —
		// including the sketch seed — so the bench estimator fingerprints
		// identically to a daemon booted from the same file. Only the
		// domain N tracks the generated stream.
		opts = fileSpec.Options
		if *wname == "adversarial" {
			// The adversarial scenario aims at the sketch seed; keep it
			// aimed at the one the file actually configures.
			gen = workload.Adversarial{SketchSeed: opts.Seed}
		}
	}
	res, err := workload.RunBench(workload.BenchSpec{
		Generator: gen,
		Cfg:       cfg,
		G:         g,
		Opts:      opts,
		Backend:   *backend,
		Workers:   *workers,
		Transport: *transport,
		Window:    *win,
		WindowK:   *windowk,
	})
	if err != nil {
		fmt.Fprintf(stderr, "gsum bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "workload %s: %s\n", res.Workload, gen.Description())
	distinctIn := "stream"
	if res.Window > 0 {
		distinctIn = "window"
	}
	fmt.Fprintf(stdout, "stream: %d updates, %d distinct items in %s, domain %d (generated in %v)\n",
		res.Updates, res.Distinct, distinctIn, *n, res.GenElapsed.Round(time.Millisecond))
	if res.Window > 0 {
		fmt.Fprintf(stdout, "window: last %d of %d ticks (clock at %d, %d stale tick(s) included)\n",
			res.Window, *ticks, res.LastTick, res.StaleTicks)
	}
	backendLabel := res.Backend
	if res.Transport != "" {
		backendLabel += "/" + res.Transport
	}
	fmt.Fprintf(stdout, "backend %s (%d worker(s)): %.0f updates/s (%v)\n",
		backendLabel, res.Workers, res.UpdatesPerSec, res.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "g = %s\n", g.Name())
	fmt.Fprintf(stdout, "exact    %.6g\n", res.Exact)
	fmt.Fprintf(stdout, "estimate %.6g  relative error %.4f  (%d sketch bytes)\n",
		res.Estimate, res.RelErr, res.SpaceBytes)
	return 0
}

func runExperiments(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "shrink workloads for a fast pass")
	run := fs.String("run", "", "run a single experiment, e.g. E4")
	if code, ok := cliflag.Parse(fs, args, stderr); !ok {
		return code
	}

	if *run != "" {
		id := strings.ToUpper(*run)
		for _, r := range experiments.Runners() {
			if r.ID == id {
				t := r.Run(*quick)
				t.Render(stdout)
				return 0
			}
		}
		fmt.Fprintf(stderr, "gsum: unknown experiment %q (E1..E15)\n", *run)
		return 2
	}
	for _, t := range experiments.All(*quick) {
		t.Render(stdout)
	}
	return 0
}

// runPush generates the canonical seeded Zipf stream and pushes one
// contiguous shard of it to a gsumd daemon — the worker half of the
// two-terminal walkthrough in the README. Every worker in a deployment
// runs the same command with a different -shard index; together they
// cover the stream exactly once. All pushing goes through the async
// daemon.Pusher (bounded queue, batched frames); -stream switches the
// transport from JSON POSTs to the persistent binary stream, where
// every batch is individually acknowledged after the daemon applies it.
func runPush(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("push", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:7600", "gsumd base URL")
	n := fs.Uint64("n", 1<<12, "domain size")
	m := fs.Int64("m", 1<<10, "max |frequency|")
	items := fs.Int("items", 90, "distinct items")
	alpha := fs.Float64("alpha", 1.1, "zipf exponent")
	seed := fs.Uint64("seed", 1, "stream seed (same on every worker)")
	shard := fs.Int("shard", 0, "this worker's shard index")
	of := fs.Int("of", 1, "total number of shards")
	batch := fs.Int("batch", engine.DefaultBatchSize, "updates per request/frame")
	useStream := fs.Bool("stream", false, "push over the persistent binary stream (/v1/stream) instead of JSON POSTs")
	if code, ok := cliflag.Parse(fs, args, stderr); !ok {
		return code
	}
	if *of < 1 || *shard < 0 || *shard >= *of {
		fmt.Fprintf(stderr, "gsum push: need 0 <= shard < of, got shard=%d of=%d\n", *shard, *of)
		return 2
	}
	if *batch < 1 {
		fmt.Fprintln(stderr, "gsum push: -batch must be positive")
		return 2
	}

	s := stream.Zipf(stream.GenConfig{N: *n, M: *m, Seed: *seed}, *items, *alpha)
	updates := s.Updates()
	lo, hi := engine.Cut(len(updates), *of, *shard)
	chunk := updates[lo:hi]

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := daemon.NewClient(*addr, nil)
	p, err := c.NewPusher(ctx, daemon.PusherConfig{Stream: *useStream, MaxBatch: *batch})
	if err != nil {
		fmt.Fprintf(stderr, "gsum push: %v\n", err)
		return 1
	}
	pushErr := p.Push(chunk)
	if err := p.Close(); err != nil {
		fmt.Fprintf(stderr, "gsum push: %v\n", err)
		return 1
	}
	if pushErr != nil {
		fmt.Fprintf(stderr, "gsum push: %v\n", pushErr)
		return 1
	}
	st := p.Stats()
	transport := "json"
	if *useStream {
		transport = "stream"
	}
	fmt.Fprintf(stdout, "pushed %d updates in %d %s batch(es) (shard %d/%d of a %d-update stream) to %s\n",
		st.Acked, st.Frames, transport, *shard, *of, len(updates), *addr)
	return 0
}

// runQuery asks a gsumd daemon for its estimate, optionally pulling and
// merging worker snapshots first (the coordinator half of the
// walkthrough).
func runQuery(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://127.0.0.1:7600", "gsumd base URL (the coordinator)")
	gname := fs.String("g", "", "catalog function for universal-backend queries")
	item := fs.String("item", "", "item id for countsketch point queries")
	pull := fs.String("pull", "", "comma-separated worker URLs to snapshot+merge before querying")
	if code, ok := cliflag.Parse(fs, args, stderr); !ok {
		return code
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	c := daemon.NewClient(*addr, nil)
	if *pull != "" {
		workers := strings.Split(*pull, ",")
		if err := c.PullFromContext(ctx, workers); err != nil {
			fmt.Fprintf(stderr, "gsum query: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "merged %d worker snapshot(s) into %s\n", len(workers), *addr)
	}
	params := url.Values{}
	if *gname != "" {
		params.Set("g", *gname)
	}
	if *item != "" {
		if _, err := strconv.ParseUint(*item, 10, 64); err != nil {
			fmt.Fprintf(stderr, "gsum query: bad -item %q\n", *item)
			return 2
		}
		params.Set("item", *item)
	}
	resp, err := c.EstimateContext(ctx, params)
	if err != nil {
		fmt.Fprintf(stderr, "gsum query: %v\n", err)
		return 1
	}
	out, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "gsum query: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, string(out))
	return 0
}
