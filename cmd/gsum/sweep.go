package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"

	"repro/internal/cliflag"
	"repro/internal/sweep"
)

// runSweep is the CLI face of internal/sweep, with three modes sharing
// one flag set:
//
//	gsum sweep -f sweep.json [-out DIR]   parent: fan the matrix out across
//	                                      worker processes, merge, report
//	gsum sweep -f cfg -out DIR -cell N    worker: run ONE cell, write its JSON
//	gsum sweep -f cfg -out DIR -merge     merge existing results only
//
// The parent self-execs this binary for every cell, so a crashing cell
// takes down one process, not the sweep: the merge lists it under
// "Missing cells" and the run exits 1.
func runSweep(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfgPath := fs.String("f", "", "sweep config file (JSON; stream block + canonical Spec JSON + axes)")
	out := fs.String("out", "", "output directory for per-cell results, merged.json, and report.md (default: a temp dir)")
	procs := fs.Int("procs", 0, "max concurrent worker processes (0 = config value, then GOMAXPROCS)")
	cell := fs.Int("cell", -1, "worker mode: run only this cell index and write its result into -out")
	mergeOnly := fs.Bool("merge", false, "merge the results already in -out and report, without running cells")
	smoke := fs.Bool("smoke", false, "run the built-in small smoke matrix (no -f needed)")
	timing := fs.Bool("timing", false, "include wall-clock throughput in the report and merged.json (not deterministic)")
	list := fs.Bool("list", false, "print the config's cell list and exit")
	if code, ok := cliflag.Parse(fs, args, stderr); !ok {
		return code
	}

	var cfg sweep.Config
	var err error
	switch {
	case *smoke:
		cfg = sweep.Smoke()
	case *cfgPath == "":
		fmt.Fprintln(stderr, "gsum sweep: need -f CONFIG or -smoke")
		return 2
	default:
		cfg, err = sweep.ParseConfigFile(*cfgPath)
		if err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 2
		}
	}
	if *procs > 0 {
		cfg.Procs = *procs
	}

	if *list {
		cells := cfg.Cells()
		fmt.Fprintf(stdout, "%d cells:\n", len(cells))
		for _, c := range cells {
			fmt.Fprintf(stdout, "  %4d  %s\n", c.Index, c.ID())
		}
		return 0
	}

	if *cell >= 0 {
		if *out == "" {
			fmt.Fprintln(stderr, "gsum sweep: worker mode needs -out DIR")
			return 2
		}
		res, err := sweep.RunCell(cfg, *cell)
		if err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
		if err := sweep.WriteCellResult(*out, res); err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
		return 0
	}

	dir := *out
	if dir == "" {
		if dir, err = os.MkdirTemp("", "gsum-sweep-"); err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "gsum sweep: writing results to %s\n", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
		return 1
	}

	var merged sweep.Merged
	if *mergeOnly {
		if merged, err = sweep.MergeDir(cfg, dir); err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
	} else {
		// Materialize the normalized config inside the output directory:
		// the workers parse THIS file, so parent and workers provably
		// derive the cell list from identical bytes (and -smoke needs a
		// file to hand them at all).
		cfgFile := filepath.Join(dir, "sweep.config.json")
		data, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfgFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
		res, err := sweep.Run(cfg, dir, func(i int) *exec.Cmd {
			return exec.Command(exe, "sweep", "-f", cfgFile, "-out", dir, "-cell", strconv.Itoa(i))
		})
		if err != nil {
			fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
			return 1
		}
		for _, f := range res.Failed {
			fmt.Fprintf(stderr, "gsum sweep: worker failed: %s\n", f)
		}
		merged = res.Merged
	}

	if err := sweep.WriteMerged(filepath.Join(dir, "merged.json"), merged, *timing); err != nil {
		fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
		return 1
	}
	reportFile, err := os.Create(filepath.Join(dir, "report.md"))
	if err != nil {
		fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
		return 1
	}
	render := io.MultiWriter(stdout, reportFile)
	if err := sweep.Report(render, cfg, merged, *timing); err != nil {
		reportFile.Close()
		fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
		return 1
	}
	if err := reportFile.Close(); err != nil {
		fmt.Fprintf(stderr, "gsum sweep: %v\n", err)
		return 1
	}
	if !merged.Complete() {
		fmt.Fprintf(stderr, "gsum sweep: %d of %d cells missing\n", len(merged.Missing), merged.Total)
		return 1
	}
	return 0
}
