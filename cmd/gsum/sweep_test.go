package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary stand in for the gsum executable: the
// sweep parent self-execs os.Executable() for every cell, which during
// tests is THIS binary — with GSUM_TEST_EXEC set it dispatches straight
// into run() like the real main would.
func TestMain(m *testing.M) {
	if os.Getenv("GSUM_TEST_EXEC") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// sweepConfigJSON is a minimal two-cell config exercised by the CLI
// tests: two workloads through the serial backend.
const sweepConfigJSON = `{
  "spec": {"g": "x^2"},
  "stream": {"n": 65536, "items": 512, "length": 20000, "seed": 1},
  "workloads": ["zipf", "adversarial"],
  "backends": ["serial"],
  "eps": [0.25],
  "point_k": 8
}`

func writeSweepConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSweepSmoke is the CI short-mode path: the built-in matrix fans out
// across real worker processes, completes, and reports.
func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	t.Setenv("GSUM_TEST_EXEC", "1")
	dir := t.TempDir()
	stdout, stderr, code := gsum(t, "sweep", "-smoke", "-out", dir)
	if code != 0 {
		t.Fatalf("exit code %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "# gsum sweep report") ||
		!strings.Contains(stdout, "(none — every cell reported)") ||
		strings.Contains(stdout, "DIVERGED") {
		t.Errorf("report not healthy:\n%s", stdout)
	}
	for _, f := range []string{"cell-0000.json", "merged.json", "report.md"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
		}
	}
	report, err := os.ReadFile(filepath.Join(dir, "report.md"))
	if err != nil {
		t.Fatal(err)
	}
	if string(report) != stdout {
		t.Error("report.md differs from the stdout report")
	}
}

// TestSweepList prints the deterministic cell enumeration without
// running anything.
func TestSweepList(t *testing.T) {
	path := writeSweepConfig(t, sweepConfigJSON)
	stdout, stderr, code := gsum(t, "sweep", "-f", path, "-list")
	if code != 0 {
		t.Fatalf("exit code %d; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "2 cells:") ||
		!strings.Contains(stdout, "zipf serial eps=0.25 w=1") ||
		!strings.Contains(stdout, "adversarial serial eps=0.25 w=1") {
		t.Errorf("cell list:\n%s", stdout)
	}
}

// TestSweepWorkerAndMerge drives the worker and merge modes directly:
// one cell's worker writes its JSON; the merge of a half-finished sweep
// exits non-zero and names the absent cell — the CLI face of the
// crashed-worker contract.
func TestSweepWorkerAndMerge(t *testing.T) {
	path := writeSweepConfig(t, sweepConfigJSON)
	dir := t.TempDir()
	_, stderr, code := gsum(t, "sweep", "-f", path, "-out", dir, "-cell", "0")
	if code != 0 {
		t.Fatalf("worker exit code %d; stderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(filepath.Join(dir, "cell-0000.json"))
	if err != nil {
		t.Fatal(err)
	}
	var res map[string]any
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("cell result not JSON: %v", err)
	}
	if res["workload"] != "zipf" {
		t.Errorf("cell 0 result %v, want the zipf cell", res["workload"])
	}

	stdout, stderr, code := gsum(t, "sweep", "-f", path, "-out", dir, "-merge")
	if code != 1 {
		t.Fatalf("merge of a half-finished sweep exited %d, want 1; stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "cell 1 (adversarial serial eps=0.25 w=1): no result file") {
		t.Errorf("report does not name the missing cell:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 of 2 cells missing") {
		t.Errorf("stderr does not count the missing cells: %q", stderr)
	}

	// An out-of-range worker index is an error, not a silent no-op.
	if _, stderr, code := gsum(t, "sweep", "-f", path, "-out", dir, "-cell", "7"); code != 1 ||
		!strings.Contains(stderr, "outside") {
		t.Errorf("out-of-range cell: code %d stderr %q", code, stderr)
	}
}

// TestSweepRejectsBadConfig: one regression per bad config field, each
// surfaced as a CLI error before any process starts.
func TestSweepRejectsBadConfig(t *testing.T) {
	base := func() map[string]any {
		var m map[string]any
		if err := json.Unmarshal([]byte(sweepConfigJSON), &m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name string
		mut  func(m map[string]any)
		want string
	}{
		{"negative items", func(m map[string]any) {
			m["stream"].(map[string]any)["items"] = -3
		}, "Items"},
		{"negative length", func(m map[string]any) {
			m["stream"].(map[string]any)["length"] = -1
		}, "length"},
		{"unknown workload", func(m map[string]any) { m["workloads"] = []string{"nope"} }, "unknown workload"},
		{"unknown backend", func(m map[string]any) { m["backends"] = []string{"quantum"} }, "unknown backend"},
		{"bad eps", func(m map[string]any) { m["eps"] = []float64{2} }, "eps"},
		{"bad alpha", func(m map[string]any) { m["alpha"] = 99 }, "alpha"},
		{"unknown g", func(m map[string]any) { m["spec"].(map[string]any)["g"] = "x^9000" }, "catalog"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := base()
			tc.mut(m)
			data, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			path := writeSweepConfig(t, string(data))
			_, stderr, code := gsum(t, "sweep", "-f", path, "-list")
			if code != 2 {
				t.Fatalf("exit code %d, want 2; stderr: %q", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.want)
			}
		})
	}
	if _, stderr, code := gsum(t, "sweep"); code != 2 || !strings.Contains(stderr, "-f CONFIG or -smoke") {
		t.Errorf("bare sweep: code %d stderr %q", code, stderr)
	}
}

// TestBenchRejectsBadConfig: the same field-by-field validation guards
// `gsum bench` — one regression per bad flag.
func TestBenchRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero n", []string{"-n", "0"}, "domain"},
		{"zero items", []string{"-items", "0"}, "Items"},
		{"negative items", []string{"-items", "-3"}, "Items"},
		{"zero len", []string{"-len", "0"}, "length"},
		{"negative len", []string{"-len", "-1"}, "length"},
		{"zero alpha", []string{"-alpha", "0"}, "alpha"},
		{"huge alpha", []string{"-alpha", "99"}, "alpha"},
		{"missing trace", []string{"-workload", "trace", "-trace", "/nonexistent/trace.csv"}, "trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := gsum(t, append([]string{"bench"}, tc.args...)...)
			if code != 2 {
				t.Fatalf("exit code %d, want 2; stderr: %q", code, stderr)
			}
			if !strings.Contains(stderr, tc.want) {
				t.Errorf("stderr %q does not mention %q", stderr, tc.want)
			}
		})
	}
}

// TestBenchNewWorkloads: the five sweep-era scenarios run end to end
// through the bench CLI, including a user-supplied trace file.
func TestBenchNewWorkloads(t *testing.T) {
	for _, w := range []string{"drift", "adversarial", "flashcrowd", "diurnal", "trace"} {
		stdout, stderr, code := gsum(t, "bench", "-workload", w,
			"-n", "4096", "-items", "256", "-len", "20000")
		if code != 0 {
			t.Fatalf("%s: exit code %d; stderr:\n%s", w, code, stderr)
		}
		if !strings.Contains(stdout, "workload "+w) || !strings.Contains(stdout, "estimate") {
			t.Errorf("%s output:\n%s", w, stdout)
		}
	}
	csv := filepath.Join(t.TempDir(), "trace.csv")
	if err := os.WriteFile(csv, []byte("1,5\n2,-3\n7\n9,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, code := gsum(t, "bench", "-workload", "trace", "-trace", csv,
		"-n", "4096", "-items", "256", "-len", "5000"); code != 0 {
		t.Fatalf("trace file bench: exit code %d; stderr:\n%s", code, stderr)
	}
}
