// Command gsumd is the distributed g-SUM aggregation daemon: one
// estimator kind from the backend registry behind an HTTP surface (see
// internal/daemon for the API).
//
//	gsumd -backend onepass -f x^2 -n 4096 -m 1024 -seed 42 -addr :7600
//	gsumd -backend list            # print the registered kinds and exit
//
// The flags assemble a backend Spec; the registry validates it and
// builds the estimator, so gsumd itself contains no per-kind code and a
// new registry entry is immediately servable. GET /v1/config serves the
// normalized Spec and its fingerprint. Alternatively `-config spec.json`
// loads the whole Spec from a JSON file — the same shape /v1/config
// serves — overriding the individual flags; since merging daemons must
// agree on the Spec bit for bit, shipping one file to every node is the
// drift-proof way to configure a fleet:
//
//	gsumd -config spec.json -addr :7600
//
// Deployment topology: run one gsumd per traffic shard (workers) and one
// for queries (coordinator), all with IDENTICAL flags except -addr. Push
// updates to the workers (gsum push), then fold worker snapshots into
// the coordinator (gsum query -pull, or let the coordinator do it
// itself — see below). Because the sketches are linear and seeded
// identically, the coordinator's estimate equals the single-machine
// estimate over the whole stream — exactly, not approximately.
// Configuration drift is caught twice: the /v1/config Spec-fingerprint
// handshake answers 409 before any snapshot ships, and the wire
// format's fingerprint re-checks it at /v1/merge.
//
// Durability: -state-dir enables snapshot checkpointing. The daemon
// atomically persists its sketch every -checkpoint-every interval and
// once more while draining on SIGINT/SIGTERM; on boot it restores the
// checkpoint, refusing one whose Spec fingerprint differs from the
// flags (a drifted or stale state dir fails loudly instead of merging
// garbage):
//
//	gsumd -backend onepass -f x^2 -seed 42 -state-dir /var/lib/gsumd-w1
//
// Self-healing cluster: a coordinator started with -pull-from (and/or
// -heartbeat, for dynamically registered workers) runs membership
// loops — it heartbeats every worker through the fingerprint handshake,
// marks one down after consecutive misses, and periodically pulls every
// live worker's snapshot, rebuilding its aggregate from the full set so
// repeated pulls never double-count. Workers announce themselves with
// -register (POST /v1/register); a crashed worker that restarts from
// its checkpoint is re-absorbed on the next pull round:
//
//	gsumd -backend onepass -f x^2 -seed 42 -addr :7600 \
//	      -pull-from http://w1:7601,http://w2:7602 -heartbeat 2s -pull-every 10s
//
// The window kind adds a clock: run every daemon with the same -window
// (and optional -windowk), POST the tick to /v1/advance on each daemon
// as time passes, and /v1/estimate answers over the last -window ticks
// only (see internal/window for the expiry guarantees):
//
//	gsumd -backend window -f x^2 -window 8 -seed 42 -addr :7600
//
// Observability: every daemon serves GET /metrics (Prometheus text
// format — ingest totals per transport, handler latencies, checkpoint
// and membership health; see internal/metrics), GET /healthz (liveness,
// always 200 while the process can answer), and GET /readyz (readiness:
// 200 only after the checkpoint is restored and the listener is bound,
// 503 again the moment a drain begins, so load balancers stop routing
// before the daemon stops accepting). -pprof additionally mounts the
// net/http/pprof endpoints under /debug/pprof/.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/window"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// serve is stubbed by tests; it blocks until the listener dies or the
// server is shut down.
var serve = func(l net.Listener, s *http.Server) error {
	return s.Serve(l)
}

// drainTimeout bounds graceful shutdown: in-flight requests get this
// long to finish before the listener is torn down hard.
const drainTimeout = 10 * time.Second

// listKinds prints the registered backend kinds with their registry
// descriptions — the `-backend list` surface, generated from the code
// so it cannot drift.
func listKinds(w io.Writer) {
	fmt.Fprintln(w, "registered backend kinds:")
	for _, k := range backend.Kinds() {
		fmt.Fprintf(w, "  %-12s %s\n", k, backend.Describe(backend.Kind(k)))
	}
}

// run parses flags, builds the daemon, and serves. It returns the
// process exit code instead of calling os.Exit, so tests can drive it.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gsumd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7600", "listen address")
	kind := fs.String("backend", "onepass",
		"estimator kind: "+strings.Join(backend.Kinds(), " | ")+` ("list" prints them and exits)`)
	fname := fs.String("f", "x^2", "catalog function (g-summing kinds; default query for universal)")
	n := fs.Uint64("n", 1<<12, "domain size")
	m := fs.Int64("m", 1<<10, "max |frequency|")
	eps := fs.Float64("eps", 0.25, "target accuracy")
	delta := fs.Float64("delta", 0.2, "failure probability")
	lambda := fs.Float64("lambda", 0, "heaviness (0 = Theorem 13 default)")
	seed := fs.Uint64("seed", 1, "root seed; must match across daemons that merge")
	envelope := fs.Float64("envelope", 0, "envelope H(M) for the universal kind (0 = measure from -f)")
	rows := fs.Int("rows", 0, "countsketch rows (0 = default 5)")
	buckets := fs.Uint64("buckets", 0, "countsketch buckets (0 = default 1024)")
	topk := fs.Int("topk", 0, "countsketch tracked candidates (0 = no tracker)")
	win := fs.Uint64("window", 0, "window kind: estimate the last W ticks of the /v1/advance clock")
	wink := fs.Int("windowk", 0, "window kind: histogram buckets per span class (0 = default 2)")
	stateDir := fs.String("state-dir", "", "directory for the daemon's checkpoint; enables restore-on-boot and periodic checkpointing")
	ckptEvery := fs.Duration("checkpoint-every", 15*time.Second, "checkpoint cadence when -state-dir is set (a final checkpoint is always written on graceful shutdown)")
	pullFrom := fs.String("pull-from", "", "comma-separated worker base URLs; seeds the membership registry and starts the coordinator's heartbeat + auto-pull loops")
	heartbeat := fs.Duration("heartbeat", 0, "worker heartbeat cadence; > 0 starts the membership loops even with an empty -pull-from (workers then join via -register), 0 = 2s when -pull-from is given")
	pullEvery := fs.Duration("pull-every", 0, "snapshot auto-pull cadence for the coordinator loops (0 = 10s)")
	register := fs.String("register", "", "coordinator base URL to announce this worker to on startup (POST /v1/register)")
	advertise := fs.String("advertise", "", "base URL this worker is reachable at, for -register (default http://<listen addr>)")
	streamMaxFrame := fs.Int("stream-max-frame", 0, "max /v1/stream frame payload in bytes (0 = 8 MiB)")
	streamIdle := fs.Duration("stream-idle", 0, "close a /v1/stream connection after this long without a frame (0 = 2m)")
	configPath := fs.String("config", "", "path to a Spec JSON file (the format GET /v1/config serves); overrides every estimator flag, so a fleet can share one artifact instead of matching flag lists")
	pprofOn := fs.Bool("pprof", false, "serve the net/http/pprof profiling endpoints under /debug/pprof/ (off by default: profiles expose timing detail, keep them off untrusted networks)")
	if code, ok := cliflag.Parse(fs, argv, stderr); !ok {
		return code
	}

	if *kind == "list" {
		listKinds(stdout)
		return 0
	}

	spec := backend.Spec{
		Kind: backend.Kind(*kind), G: *fname,
		Options: core.Options{N: *n, M: *m, Eps: *eps, Delta: *delta,
			Lambda: *lambda, Seed: *seed, Envelope: *envelope},
		Window: window.Config{W: *win, K: *wink},
		Rows:   *rows, Buckets: *buckets, TopK: *topk,
	}
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintf(stderr, "gsumd: -config: %v\n", err)
			return 1
		}
		spec, err = backend.ParseSpec(data)
		if err != nil {
			fmt.Fprintf(stderr, "gsumd: -config %s: %v\n", *configPath, err)
			return 1
		}
		// Echo the resolved identity so the startup log still answers
		// "what is this daemon running" without opening the file.
		*kind, *fname, *seed = string(spec.Kind), spec.G, spec.Options.Seed
	}
	srv, err := daemon.NewServer(spec)
	if err != nil {
		fmt.Fprintf(stderr, "gsumd: %v\n", err)
		return 1
	}

	// Restore before listening: a daemon must never serve estimates from
	// a fresh sketch while a checkpoint it should have loaded sits on
	// disk, and a drifted checkpoint must abort the boot entirely.
	var ckptPath string
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "gsumd: state dir: %v\n", err)
			return 1
		}
		ckptPath = daemon.CheckpointPath(*stateDir)
		switch err := srv.RestoreCheckpoint(ckptPath); {
		case err == nil:
			fmt.Fprintf(stdout, "gsumd: restored checkpoint %s\n", ckptPath)
		case errors.Is(err, os.ErrNotExist):
			fmt.Fprintf(stdout, "gsumd: no checkpoint in %s, starting fresh\n", *stateDir)
		default:
			fmt.Fprintf(stderr, "gsumd: %v\n", err)
			return 1
		}
	}

	srv.SetStreamLimits(*streamMaxFrame, *streamIdle)

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gsumd: %v\n", err)
		return 1
	}

	logf := func(format string, args ...interface{}) {
		fmt.Fprintf(stderr, "gsumd: "+format+"\n", args...)
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	if *register != "" {
		self := *advertise
		if self == "" {
			self = "http://" + l.Addr().String()
		}
		// The coordinator may simply not be up yet; registration failure
		// is a warning, not a fatal error — the operator (or a restart)
		// can re-register, and -pull-from on the coordinator side works
		// without any registration at all.
		if err := daemon.NewClient(*register, nil).RegisterContext(ctx, self); err != nil {
			logf("register at %s: %v (continuing unregistered)", *register, err)
		} else {
			fmt.Fprintf(stdout, "gsumd: registered %s at coordinator %s\n", self, *register)
		}
	}

	membershipOn := *pullFrom != "" || *heartbeat > 0
	if *pullFrom != "" {
		for _, w := range strings.Split(*pullFrom, ",") {
			if err := srv.Membership().Add(strings.TrimSpace(w)); err != nil {
				fmt.Fprintf(stderr, "gsumd: %v\n", err)
				return 1
			}
		}
	}
	if membershipOn {
		srv.Membership().Start(daemon.MembershipConfig{
			Heartbeat: *heartbeat, PullEvery: *pullEvery, Logf: logf})
		fmt.Fprintf(stdout, "gsumd: membership loops running (%d seeded workers)\n",
			len(srv.Membership().Members()))
	}

	var ckpt *daemon.Checkpointer
	if ckptPath != "" {
		ckpt = daemon.StartCheckpointer(srv, ckptPath, *ckptEvery, logf)
	}

	// The daemon serves through an http.Server with bounded read/write
	// windows (a wedged peer cannot pin a handler goroutine forever) and
	// drains gracefully on SIGINT/SIGTERM: stop accepting, let in-flight
	// requests AND hijacked /v1/stream connections finish (up to
	// drainTimeout each), then write the final checkpoint so an orderly
	// restart loses nothing a client holds an ack for.
	handler := srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       60 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		_ = httpSrv.Shutdown(shCtx)
	}()

	// Ready only now: the checkpoint (if any) is restored, membership and
	// checkpointing are running, and the listener is bound. /readyz flips
	// to 200 here and back to 503 the moment the shutdown drain begins.
	srv.SetReady(true)
	fmt.Fprintf(stdout, "gsumd: backend=%s g=%s seed=%d fingerprint=%#x listening on %s\n",
		*kind, *fname, *seed, srv.Spec().Fingerprint(), l.Addr())
	err = serve(l, httpSrv)
	stopSignals()

	code := 0
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "gsumd: %v\n", err)
		code = 1
	}
	// Hijacked /v1/stream connections are invisible to
	// httpSrv.Shutdown; drain them here — every frame acked by the loop
	// lands before the final checkpoint below, so an ack really is a
	// durability receipt.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), drainTimeout)
	if derr := srv.DrainStreams(drainCtx); derr != nil {
		fmt.Fprintf(stderr, "gsumd: stream drain: %v\n", derr)
	}
	cancelDrain()
	srv.Membership().Stop()
	if ckpt != nil {
		if cerr := ckpt.Stop(); cerr != nil {
			fmt.Fprintf(stderr, "gsumd: final checkpoint: %v\n", cerr)
			code = 1
		} else {
			fmt.Fprintf(stdout, "gsumd: final checkpoint written to %s\n", ckptPath)
		}
	}
	if errors.Is(err, http.ErrServerClosed) && code == 0 {
		fmt.Fprintln(stdout, "gsumd: drained")
	}
	return code
}
