// Command gsumd is the distributed g-SUM aggregation daemon: one
// estimator kind from the backend registry behind an HTTP surface (see
// internal/daemon for the API).
//
//	gsumd -backend onepass -f x^2 -n 4096 -m 1024 -seed 42 -addr :7600
//	gsumd -backend list            # print the registered kinds and exit
//
// The flags assemble a backend Spec; the registry validates it and
// builds the estimator, so gsumd itself contains no per-kind code and a
// new registry entry is immediately servable. GET /v1/config serves the
// normalized Spec and its fingerprint.
//
// Deployment topology: run one gsumd per traffic shard (workers) and one
// for queries (coordinator), all with IDENTICAL flags except -addr. Push
// updates to the workers (gsum push), then fold worker snapshots into
// the coordinator (gsum query -pull, or POST each worker's /v1/snapshot
// body to the coordinator's /v1/merge). Because the sketches are linear
// and seeded identically, the coordinator's estimate equals the
// single-machine estimate over the whole stream — exactly, not
// approximately. Configuration drift is caught twice: the /v1/config
// Spec-fingerprint handshake answers 409 before any snapshot ships, and
// the wire format's fingerprint re-checks it at /v1/merge.
//
// The window kind adds a clock: run every daemon with the same -window
// (and optional -windowk), POST the tick to /v1/advance on each daemon
// as time passes, and /v1/estimate answers over the last -window ticks
// only (see internal/window for the expiry guarantees):
//
//	gsumd -backend window -f x^2 -window 8 -seed 42 -addr :7600
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"repro/internal/backend"
	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/window"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// serve is stubbed by tests; it blocks until the listener dies.
var serve = func(l net.Listener, h http.Handler) error {
	return http.Serve(l, h)
}

// listKinds prints the registered backend kinds with their registry
// descriptions — the `-backend list` surface, generated from the code
// so it cannot drift.
func listKinds(w io.Writer) {
	fmt.Fprintln(w, "registered backend kinds:")
	for _, k := range backend.Kinds() {
		fmt.Fprintf(w, "  %-12s %s\n", k, backend.Describe(backend.Kind(k)))
	}
}

// run parses flags, builds the daemon, and serves. It returns the
// process exit code instead of calling os.Exit, so tests can drive it.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gsumd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:7600", "listen address")
	kind := fs.String("backend", "onepass",
		"estimator kind: "+strings.Join(backend.Kinds(), " | ")+` ("list" prints them and exits)`)
	fname := fs.String("f", "x^2", "catalog function (g-summing kinds; default query for universal)")
	n := fs.Uint64("n", 1<<12, "domain size")
	m := fs.Int64("m", 1<<10, "max |frequency|")
	eps := fs.Float64("eps", 0.25, "target accuracy")
	delta := fs.Float64("delta", 0.2, "failure probability")
	lambda := fs.Float64("lambda", 0, "heaviness (0 = Theorem 13 default)")
	seed := fs.Uint64("seed", 1, "root seed; must match across daemons that merge")
	envelope := fs.Float64("envelope", 0, "envelope H(M) for the universal kind (0 = measure from -f)")
	rows := fs.Int("rows", 0, "countsketch rows (0 = default 5)")
	buckets := fs.Uint64("buckets", 0, "countsketch buckets (0 = default 1024)")
	topk := fs.Int("topk", 0, "countsketch tracked candidates (0 = no tracker)")
	win := fs.Uint64("window", 0, "window kind: estimate the last W ticks of the /v1/advance clock")
	wink := fs.Int("windowk", 0, "window kind: histogram buckets per span class (0 = default 2)")
	if code, ok := cliflag.Parse(fs, argv, stderr); !ok {
		return code
	}

	if *kind == "list" {
		listKinds(stdout)
		return 0
	}

	spec := backend.Spec{
		Kind: backend.Kind(*kind), G: *fname,
		Options: core.Options{N: *n, M: *m, Eps: *eps, Delta: *delta,
			Lambda: *lambda, Seed: *seed, Envelope: *envelope},
		Window: window.Config{W: *win, K: *wink},
		Rows:   *rows, Buckets: *buckets, TopK: *topk,
	}
	srv, err := daemon.NewServer(spec)
	if err != nil {
		fmt.Fprintf(stderr, "gsumd: %v\n", err)
		return 1
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gsumd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "gsumd: backend=%s g=%s seed=%d fingerprint=%#x listening on %s\n",
		*kind, *fname, *seed, srv.Spec().Fingerprint(), l.Addr())
	if err := serve(l, srv.Handler()); err != nil {
		fmt.Fprintf(stderr, "gsumd: %v\n", err)
		return 1
	}
	return 0
}
