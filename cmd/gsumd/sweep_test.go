package main

import (
	"context"
	"fmt"
	"syscall"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/daemon"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// TestSweepCellMatchesStandaloneDaemon closes the loop between the
// sweep engine and this command: a sweep daemon cell (which spins gsumd
// topologies in-process via internal/daemon) must produce the same
// estimate as a REAL gsumd booted through this command's run() with the
// equivalent flags and fed the identical scenario stream. Passing proves
// the sweep's daemon cells measure the same estimator this binary
// deploys, not a lookalike.
func TestSweepCellMatchesStandaloneDaemon(t *testing.T) {
	cfg, err := sweep.Config{
		Spec:       backend.Spec{G: "x^2"},
		Stream:     workload.Config{N: 1 << 12, Items: 256, Length: 20000, Seed: 3},
		Workloads:  []string{"drift"},
		Backends:   []string{"serial", "daemon"},
		Transports: []string{"stream"},
		Eps:        []float64{0.25},
		PointK:     8,
	}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	serialCell, err := sweep.RunCell(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	daemonCell, err := sweep.RunCell(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if daemonCell.Backend != "daemon" || daemonCell.Transport != "stream" {
		t.Fatalf("cell 1 is %+v, want the daemon/stream cell", daemonCell.Cell)
	}
	if serialCell.Estimate != daemonCell.Estimate {
		t.Fatalf("sweep cells diverge before the daemon comparison: serial %v vs daemon %v",
			serialCell.Estimate, daemonCell.Estimate)
	}

	// The same estimator as a standalone gsumd: flags spelled from the
	// normalized sweep spec.
	o := cfg.Spec.Options
	args := []string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", cfg.Spec.G,
		"-n", fmt.Sprint(cfg.Stream.N), "-m", fmt.Sprint(o.M),
		"-eps", fmt.Sprint(cfg.Eps[0]), "-lambda", fmt.Sprint(o.Lambda),
		"-seed", fmt.Sprint(o.Seed)}
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(args, &out, &errb) }()
	addr := listenAddrOf(t, &out)

	gen, err := cfg.Generator("drift")
	if err != nil {
		t.Fatal(err)
	}
	s := gen.Generate(cfg.Stream)
	c := daemon.NewClient("http://"+addr, nil)
	p, err := c.NewPusher(context.Background(), daemon.PusherConfig{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Push(s.Updates()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := resp.Value()
	if !ok {
		t.Fatalf("daemon estimate response missing a value: %+v", resp)
	}
	if got != serialCell.Estimate {
		t.Fatalf("standalone gsumd estimate %v != sweep cell estimate %v", got, serialCell.Estimate)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("gsumd did not drain after SIGTERM")
	}
}
