package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/stream"
)

// syncBuffer lets the test read run()'s output while run() is still
// writing it from another goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// stubServe replaces the blocking serve loop and captures the handler.
func stubServe(t *testing.T) *http.Handler {
	t.Helper()
	orig := serve
	var got http.Handler
	serve = func(l net.Listener, s *http.Server) error {
		got = s.Handler
		l.Close()
		return nil
	}
	t.Cleanup(func() { serve = orig })
	return &got
}

func TestRunServesOnEphemeralPort(t *testing.T) {
	h := stubServe(t)
	var out, errb bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", "x^2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if *h == nil {
		t.Fatal("serve was not reached")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("missing listen banner: %q", out.String())
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-backend", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown kind") {
		t.Errorf("stderr %q does not name the bad backend kind", errb.String())
	}
}

// TestBackendListPrintsRegistry: `-backend list` prints every
// registered kind straight from the registry and exits 0, so the CLI
// surface cannot drift from the code.
func TestBackendListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-backend", "list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	for _, kind := range backend.Kinds() {
		if !strings.Contains(out.String(), kind) {
			t.Errorf("list output missing registered kind %q:\n%s", kind, out.String())
		}
	}
}

// TestBackendListIsSorted pins the listing order: the registry returns
// kinds sorted, and the printed lines follow it exactly — including the
// sharded kind — so the output is reproducible for docs and scripts.
func TestBackendListIsSorted(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-backend", "list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
	if lines[0] != "registered backend kinds:" {
		t.Fatalf("unexpected header %q", lines[0])
	}
	kinds := backend.Kinds()
	if !sort.StringsAreSorted(kinds) {
		t.Fatal("backend.Kinds() is not sorted")
	}
	if len(lines)-1 != len(kinds) {
		t.Fatalf("%d listing lines for %d kinds:\n%s", len(lines)-1, len(kinds), out.String())
	}
	sawSharded := false
	for i, k := range kinds {
		want := fmt.Sprintf("  %-12s %s", k, backend.Describe(backend.Kind(k)))
		if lines[i+1] != want {
			t.Errorf("line %d = %q, want %q", i+1, lines[i+1], want)
		}
		if k == "sharded" {
			sawSharded = true
		}
	}
	if !sawSharded {
		t.Error("sharded kind missing from the registry listing")
	}
}

// TestRunConfigFile: `-config spec.json` loads the whole Spec from the
// file — the same JSON /v1/config serves — and the daemon boots with
// that exact configuration (round trip verified via the fingerprint in
// the listen banner).
func TestRunConfigFile(t *testing.T) {
	spec := backend.Spec{
		Kind: backend.KindSharded, G: "x^2", Workers: 2,
		Options: core.Options{N: 1 << 10, M: 1 << 8, Eps: 0.25, Seed: 99, Lambda: 1.0 / 16},
	}
	blob, err := spec.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	norm, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}

	stubServe(t)
	var out, errb bytes.Buffer
	// The flags say onepass with a different seed; the file must win.
	code := run([]string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-seed", "1", "-config", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want := fmt.Sprintf("backend=sharded g=x^2 seed=99 fingerprint=%#x", norm.Fingerprint())
	if !strings.Contains(out.String(), want) {
		t.Errorf("banner missing %q:\n%s", want, out.String())
	}
}

func TestRunConfigFileErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-config", filepath.Join(t.TempDir(), "absent.json")}, &out, &errb); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	errb.Reset()
	if code := run([]string{"-config", bad}, &out, &errb); code != 1 {
		t.Fatalf("bad JSON: exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), bad) {
		t.Errorf("stderr %q does not name the bad file", errb.String())
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Errorf("stderr %q does not name the bad flag", errb.String())
	}
}

func TestRunRejectsStrayArguments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"extra"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unexpected arguments") {
		t.Errorf("stderr %q does not flag the stray argument", errb.String())
	}
}

// listenAddrOf polls the banner for the bound address.
func listenAddrOf(t *testing.T, out *syncBuffer) string {
	t.Helper()
	re := regexp.MustCompile(`listening on (\S+)`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := re.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("no listen banner in output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGracefulShutdownWritesCheckpointAndRestores drives the real
// lifecycle end to end: serve with -state-dir, push traffic, SIGINT,
// assert run() drains and writes the final checkpoint, then boot a
// second daemon from the same state dir and assert the state survived.
func TestGracefulShutdownWritesCheckpointAndRestores(t *testing.T) {
	stateDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", "x^2",
		"-seed", "7", "-state-dir", stateDir, "-checkpoint-every", "1h"}

	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(args, &out, &errb) }()
	addr := listenAddrOf(t, &out)

	c := daemon.NewClient("http://"+addr, nil)
	if err := c.Push(nil); err != nil { // liveness: the surface is up
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/ingest", "application/json",
		strings.NewReader(`{"updates":[[3,5],[9,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	before, err := c.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}

	// kill -INT: drain and checkpoint. The interval is an hour, so the
	// checkpoint on disk can only come from the shutdown path.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d, stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain after SIGINT")
	}
	if !strings.Contains(out.String(), "final checkpoint written") || !strings.Contains(out.String(), "drained") {
		t.Errorf("missing drain/checkpoint banners:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(stateDir, daemon.CheckpointName)); err != nil {
		t.Fatalf("no checkpoint after graceful shutdown: %v", err)
	}

	// Second boot restores it.
	var out2, errb2 syncBuffer
	done2 := make(chan int, 1)
	go func() { done2 <- run(args, &out2, &errb2) }()
	addr2 := listenAddrOf(t, &out2)
	if !strings.Contains(out2.String(), "restored checkpoint") {
		t.Errorf("restart did not report a restore:\n%s", out2.String())
	}
	after, err := daemon.NewClient("http://"+addr2, nil).Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}
	if *after.Estimate != *before.Estimate {
		t.Errorf("estimate after restart %v != before shutdown %v", *after.Estimate, *before.Estimate)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done2:
	case <-time.After(15 * time.Second):
		t.Fatal("second run did not drain after SIGINT")
	}
}

// TestStreamDrainDurability is the kill-and-restart e2e for the binary
// streaming path: a Pusher streams frames at a live gsumd while SIGTERM
// lands mid-session. The contract under test is the ack receipt — every
// update the client holds an ack for must be inside the final
// checkpoint, and nothing may be applied twice. Both directions are
// proven at once by redelivering the unacked suffix to the restarted
// daemon and requiring the estimate to equal a serial estimator fed the
// identical updates: a lost acked frame or a double-applied unacked one
// would each break the equality.
func TestStreamDrainDurability(t *testing.T) {
	stateDir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", "x^2",
		"-n", "65536", "-seed", "7", "-state-dir", stateDir, "-checkpoint-every", "1h"}

	// A synthetic in-domain stream long enough that SIGTERM lands while
	// frames are still in flight. The working set stays far below the
	// candidate trackers' capacity — the regime in which estimates are
	// independent of batch boundaries, so serial-vs-daemon equality is
	// exact (see internal/core/parallel.go).
	const total = 60000
	updates := make([]stream.Update, total)
	for i := range updates {
		updates[i] = stream.Update{Item: uint64(i*2654435761) % 64, Delta: int64(i%7) - 3}
	}

	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(args, &out, &errb) }()
	addr := listenAddrOf(t, &out)

	c := daemon.NewClient("http://"+addr, nil)
	p, err := c.NewPusher(context.Background(), daemon.PusherConfig{
		Stream: true, MaxBatch: 64, MaxBuffered: 64, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	pushDone := make(chan error, 1)
	go func() { pushDone <- p.Push(updates) }()

	// Let some frames land, then pull the rug.
	for p.Stats().Acked == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d, stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain after SIGTERM")
	}
	<-pushDone
	_ = p.Close()
	st := p.Stats()
	if st.Acked == 0 {
		t.Fatal("no frames acked before the drain")
	}
	if st.Total != st.Acked {
		t.Fatalf("daemon counter %d != acked updates %d: acks are not aligned with applies", st.Total, st.Acked)
	}
	t.Logf("drain cut the session at %d/%d acked updates (%d frames)", st.Acked, total, st.Frames)

	// Restart from the checkpoint and redeliver exactly the unacked
	// suffix — what a real worker would do with its ack cursor.
	var out2, errb2 syncBuffer
	done2 := make(chan int, 1)
	go func() { done2 <- run(args, &out2, &errb2) }()
	addr2 := listenAddrOf(t, &out2)
	if !strings.Contains(out2.String(), "restored checkpoint") {
		t.Fatalf("restart did not restore the checkpoint:\n%s", out2.String())
	}
	c2 := daemon.NewClient("http://"+addr2, nil)
	p2, err := c2.NewPusher(context.Background(), daemon.PusherConfig{Stream: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Push(updates[st.Acked:]); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Estimate(nil)
	if err != nil {
		t.Fatal(err)
	}

	serial, err := backend.Open(backend.Spec{Kind: backend.KindOnePass, G: "x^2",
		Options: core.Options{N: 65536, M: 1 << 10, Eps: 0.25, Delta: 0.2, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	serial.UpdateBatch(updates)
	if *got.Estimate != serial.Estimate() {
		t.Fatalf("estimate after drain+restart+redelivery %v != serial %v (acked frames lost or double-applied)",
			*got.Estimate, serial.Estimate())
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done2:
	case <-time.After(15 * time.Second):
		t.Fatal("second run did not drain after SIGTERM")
	}
}

// TestRunRefusesDriftedStateDir: booting over a checkpoint written
// under a different Spec must fail loudly before serving anything.
func TestRunRefusesDriftedStateDir(t *testing.T) {
	stateDir := t.TempDir()
	base := []string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", "x^2",
		"-state-dir", stateDir, "-checkpoint-every", "1h"}

	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(append(base, "-seed", "1"), &out, &errb) }()
	listenAddrOf(t, &out)
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain after SIGINT")
	}

	var out2, errb2 bytes.Buffer
	if code := run(append(base, "-seed", "2"), &out2, &errb2); code != 1 {
		t.Fatalf("drifted state dir: exit %d, want 1 (stderr: %s)", code, errb2.String())
	}
	if !strings.Contains(errb2.String(), "fingerprint mismatch") {
		t.Errorf("stderr %q does not name the fingerprint mismatch", errb2.String())
	}
}

// TestRunStateDirStartsFresh: an empty state dir is a fresh start, not
// an error.
func TestRunStateDirStartsFresh(t *testing.T) {
	h := stubServe(t)
	var out, errb bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-state-dir", t.TempDir()}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if *h == nil {
		t.Fatal("serve was not reached")
	}
	if !strings.Contains(out.String(), "starting fresh") {
		t.Errorf("missing fresh-start banner: %q", out.String())
	}
}

// TestRunRejectsBadPullFrom: a malformed -pull-from URL is a fatal
// configuration error.
func TestRunRejectsBadPullFrom(t *testing.T) {
	stubServe(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "127.0.0.1:0", "-pull-from", "not a url"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "base URL") {
		t.Errorf("stderr %q does not explain the bad URL", errb.String())
	}
}

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
}

// TestObservabilityEndpoints boots a real gsumd with -pprof and checks
// the operational surface end to end: readiness flips on only after the
// listen banner, liveness and metrics answer, and the profiling
// endpoints exist exactly when the flag asks for them.
func TestObservabilityEndpoints(t *testing.T) {
	args := []string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", "x^2",
		"-seed", "7", "-pprof"}
	var out, errb syncBuffer
	done := make(chan int, 1)
	go func() { done <- run(args, &out, &errb) }()
	addr := listenAddrOf(t, &out)
	base := "http://" + addr

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("healthz = %d", got)
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("readyz after listen banner = %d, want 200", got)
	}
	if got := status("/metrics"); got != http.StatusOK {
		t.Errorf("metrics = %d", got)
	}
	// gsumd_ready comes from the same gauge /readyz consults.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "gsumd_ready 1") {
		t.Errorf("metrics scrape lacks gsumd_ready 1")
	}
	if got := status("/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("pprof cmdline with -pprof = %d, want 200", got)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d, stderr: %s", code, errb.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not drain after SIGINT")
	}

	// Without the flag the profiling surface must not exist.
	var out2, errb2 syncBuffer
	done2 := make(chan int, 1)
	go func() {
		done2 <- run([]string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", "x^2"}, &out2, &errb2)
	}()
	addr2 := listenAddrOf(t, &out2)
	resp2, err := http.Get("http://" + addr2 + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Errorf("pprof served without -pprof (status %d)", resp2.StatusCode)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done2:
	case <-time.After(15 * time.Second):
		t.Fatal("second run did not drain after SIGINT")
	}
}
