package main

import (
	"bytes"
	"net"
	"net/http"
	"strings"
	"testing"

	"repro/internal/backend"
)

// stubServe replaces the blocking serve loop and captures the handler.
func stubServe(t *testing.T) *http.Handler {
	t.Helper()
	orig := serve
	var got http.Handler
	serve = func(l net.Listener, h http.Handler) error {
		got = h
		l.Close()
		return nil
	}
	t.Cleanup(func() { serve = orig })
	return &got
}

func TestRunServesOnEphemeralPort(t *testing.T) {
	h := stubServe(t)
	var out, errb bytes.Buffer
	code := run([]string{"-addr", "127.0.0.1:0", "-backend", "onepass", "-f", "x^2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if *h == nil {
		t.Fatal("serve was not reached")
	}
	if !strings.Contains(out.String(), "listening on") {
		t.Errorf("missing listen banner: %q", out.String())
	}
}

func TestRunRejectsUnknownBackend(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-backend", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "unknown kind") {
		t.Errorf("stderr %q does not name the bad backend kind", errb.String())
	}
}

// TestBackendListPrintsRegistry: `-backend list` prints every
// registered kind straight from the registry and exits 0, so the CLI
// surface cannot drift from the code.
func TestBackendListPrintsRegistry(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-backend", "list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errb.String())
	}
	for _, kind := range backend.Kinds() {
		if !strings.Contains(out.String(), kind) {
			t.Errorf("list output missing registered kind %q:\n%s", kind, out.String())
		}
	}
}

func TestRunRejectsUnknownFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "bogus") {
		t.Errorf("stderr %q does not name the bad flag", errb.String())
	}
}

func TestRunRejectsStrayArguments(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"extra"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unexpected arguments") {
		t.Errorf("stderr %q does not flag the stray argument", errb.String())
	}
}

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
}
