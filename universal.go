// Package universal is the public API of this reproduction of
//
//	Braverman, Chestnut, Woodruff, Yang.
//	"Streaming Space Complexity of Nearly All Functions of One Variable
//	on Frequency Vectors." PODS 2016 (arXiv:1601.07473).
//
// It answers two questions about a function g : Z≥0 → R≥0 with g(0)=0,
// g(1)=1, g(x)>0:
//
//  1. Can Σ_i g(|v_i|) over a turnstile stream's frequency vector be
//     (1±ε)-approximated in sub-polynomial space? Classify implements the
//     paper's zero-one laws: for "normal" g, one pass works iff g is
//     slow-jumping, slow-dropping, and predictable (Theorem 2); two passes
//     work iff g is slow-jumping and slow-dropping (Theorem 3).
//
//  2. How? NewOnePassEstimator and NewTwoPassEstimator implement the
//     paper's Algorithms 2 and 1 inside the Braverman-Ostrovsky recursive
//     sketch (Theorem 13), and NewUniversalSketch exposes the
//     function-independent linear sketch that answers post-hoc g-SUM
//     queries for whole function families (the §1.1.1 MLE application).
//
// Everything is deterministic given a seed, uses only the standard
// library, and is exercised end to end by the E1-E15 experiment suite
// (internal/experiments, cmd/gsum) documented in EXPERIMENTS.md.
//
// Ingestion is batched and shardable: every estimator implements the
// Sketcher/BatchSketcher contracts of internal/engine, and
// NewParallelEstimator (or est.ProcessParallel) partitions a stream
// across worker-owned shards that merge by linearity, so worker count
// never changes the counters.
//
// The sketch-backed estimators (OnePassEstimator, TwoPassEstimator,
// UniversalSketch) implement encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler with merge semantics: UnmarshalBinary ADDS
// a serialized shard's counters into the receiver, and a fingerprint in
// the wire header (internal/wire) rejects payloads from a sketch built
// with a different seed or configuration. This is what cmd/gsumd builds
// on: worker daemons ship snapshots, a coordinator folds them, and the
// merged estimate equals the single-process estimate exactly. See the
// README's wire-format section.
//
// # Quick start
//
// Every estimator is described by a Spec and built by Open — one
// configuration object, one constructor, one streaming contract:
//
//	spec := universal.Spec{
//		Kind:    universal.KindOnePass,       // or twopass, universal, window, ...
//		G:       "x^2 lg(1+x)",               // catalog function name
//		Options: universal.Options{N: 1 << 12, M: 1 << 10},
//	}
//	est, err := universal.Open(spec)         // same Spec => same sketch, any machine
//	s := universal.NewStream(1 << 12)        // turnstile stream, domain [0, 4096)
//	s.Add(7, +3)
//	s.Add(9, -2)
//	universal.Process(est, s)
//	fmt.Println(est.Estimate())
//
// The NewXxx constructors below remain as typed shims over the same
// machinery. See examples/ for runnable programs and the README for the
// old-constructor → Spec migration table.
package universal

import (
	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gfunc"
	"repro/internal/stream"
	"repro/internal/window"
)

// Spec is the typed, serializable description of any estimator in this
// repository: a Kind, a catalog function name, Options, and the
// kind-specific extras. Open(Spec) is the unified constructor; the
// legacy NewXxx constructors below remain as thin shims over the same
// machinery. Spec has a canonical JSON encoding (CanonicalJSON) and a
// configuration fingerprint (Fingerprint) that distributed deployments
// exchange to prove they built identical sketches BEFORE shipping
// snapshots (gsumd's /v1/config handshake answers 409 on drift).
type Spec = backend.Spec

// Kind names a registered estimator family; see the Kind* constants.
type Kind = backend.Kind

// The registered estimator kinds. Kinds() reports the full set at run
// time; each value documents its family in internal/backend.
const (
	KindOnePass     = backend.KindOnePass
	KindTwoPass     = backend.KindTwoPass
	KindParallel    = backend.KindParallel
	KindSharded     = backend.KindSharded
	KindUniversal   = backend.KindUniversal
	KindWindow      = backend.KindWindow
	KindCountSketch = backend.KindCountSketch
	KindHeavy       = backend.KindHeavy
	KindExact       = backend.KindExact
)

// Estimator is the unified contract every kind satisfies: streaming
// ingestion (Update/UpdateBatch), an Estimate, and the merge-semantics
// wire format (MarshalBinary/UnmarshalBinary). Richer behavior is
// reached through the capability interfaces (Windowed, TwoPass, ...).
type Estimator = backend.Estimator

// Windowed is the capability of kinds with a tick clock (KindWindow):
// Advance moves time, Estimate covers the trailing window.
type Windowed = backend.Windowed

// TwoPassSink is the capability of kinds that replay the stream
// (KindTwoPass): feed every update, FinishPass1, feed every update
// again, then Estimate.
type TwoPassSink = backend.TwoPass

// FuncQuerier is the capability of kinds answering post-hoc g-SUM
// queries for arbitrary catalog functions (KindUniversal).
type FuncQuerier = backend.FuncQuerier

// Open validates spec and constructs the estimator through the backend
// registry. It is a pure function of the Spec: two Open calls with
// equal Specs — in one process or on two machines — return estimators
// with identical hash functions and wire fingerprints, so their
// snapshots merge exactly.
func Open(spec Spec) (Estimator, error) { return backend.Open(spec) }

// Kinds returns the registered estimator kind names, sorted.
func Kinds() []string { return backend.Kinds() }

// ParseSpec decodes a Spec from its JSON encoding (canonical or not —
// the shape gsumd serves at /v1/config) and normalizes it. It is how
// file-based configuration enters the system: `gsumd -config` and
// `gsum bench -config` both resolve their Spec through this one door.
func ParseSpec(data []byte) (Spec, error) { return backend.ParseSpec(data) }

// Describe returns the one-line registry description of a kind ("" if
// unknown). CLI surfaces print this instead of hand-maintained lists.
func Describe(k Kind) string { return backend.Describe(k) }

// Process drives a whole in-memory stream through est using its richest
// capability: KindParallel shards it, KindSharded fans it through the
// lock-free ring hot path, KindTwoPass replays it for both passes,
// everything else streams it through the batched path.
func Process(est Estimator, s *Stream) error { return backend.Process(est, s) }

// Merge folds src into dst. Both must come from Open of equal Specs;
// kinds without an in-memory merge fold through the wire format, whose
// fingerprint enforces the equal-configuration contract either way.
func Merge(dst, src Estimator) error { return backend.Merge(dst, src) }

// Func is a function g in the paper's class G (g(0)=0, g(1)=1, g(x)>0 for
// x>0). Implement it directly or use the catalog constructors below.
type Func = gfunc.Func

// Stream is an in-memory turnstile stream over a domain [0, N).
type Stream = stream.Stream

// Update is a single turnstile update (item, δ).
type Update = stream.Update

// Vector is a sparse frequency vector.
type Vector = stream.Vector

// Options configures the estimators; see core.Options for field docs.
type Options = core.Options

// Classification is the zero-one-law verdict bundle for one function.
type Classification = gfunc.Classification

// CheckConfig tunes the property witness searchers.
type CheckConfig = gfunc.CheckConfig

// Tractability is a zero-one-law verdict (Tractable, Intractable, or
// OpenNearlyPeriodic).
type Tractability = gfunc.Tractability

// Tractability verdict values.
const (
	Tractable          = gfunc.Tractable
	Intractable        = gfunc.Intractable
	OpenNearlyPeriodic = gfunc.OpenNearlyPeriodic
)

// NewStream returns an empty turnstile stream over the domain [0, n).
func NewStream(n uint64) *Stream { return stream.New(n) }

// New wraps a closure satisfying the class-G constraints as a Func.
func New(name string, eval func(uint64) float64) Func { return gfunc.New(name, eval) }

// Normalize rescales an arbitrary positive function into class G.
func Normalize(name string, f func(uint64) float64) Func { return gfunc.Normalize(name, f) }

// Catalog constructors for the paper's worked examples.
var (
	// Power returns g(x) = x^p (tractable iff 0 <= p <= 2).
	Power = gfunc.Power
	// F2 returns g(x) = x².
	F2 = gfunc.F2Func
	// F1 returns g(x) = x.
	F1 = gfunc.F1Func
	// L0 returns the distinct-elements indicator 1(x>0).
	L0 = gfunc.L0
	// Reciprocal returns 1/x (not slow-dropping; intractable).
	Reciprocal = gfunc.Reciprocal
	// X2Log returns x² lg(1+x) (1-pass tractable).
	X2Log = gfunc.X2Log
	// SinX2 returns (2+sin x)x²/3 (2-pass tractable only).
	SinX2 = gfunc.SinX2
	// SinSqrtX2 returns (2+sin √x)x² normalized (2-pass tractable only).
	SinSqrtX2 = gfunc.SinSqrtX2
	// SinLogX2 returns (2+sin log(1+x))x² normalized (1-pass tractable).
	SinLogX2 = gfunc.SinLogX2
	// ExpSqrtLog returns e^√log(1+x) normalized (1-pass tractable).
	ExpSqrtLog = gfunc.ExpSqrtLog
	// Gnp returns the nearly periodic g_np(x) = 2^{-ι(x)} of Appendix D.
	Gnp = gfunc.Gnp
	// LEta applies the L_η(g) = g·log^η(1+x) transform of Definition 55.
	LEta = gfunc.LEta
)

// DefaultCheckConfig returns the witness-search configuration used by the
// experiments (range 2^20, γ = 1/2, ε(x) = 1/ln(2+x)).
func DefaultCheckConfig() CheckConfig { return gfunc.DefaultCheckConfig() }

// Classify runs the zero-one-law property checkers (Definitions 6-9) on g
// and returns the Theorem 2 / Theorem 3 verdicts.
func Classify(g Func, cfg CheckConfig) Classification { return gfunc.Classify(g, cfg) }

// OnePassEstimator approximates g-SUM in one pass (Theorem 2's upper
// bound: Algorithm 2 inside the recursive sketch).
type OnePassEstimator = core.OnePassEstimator

// TwoPassEstimator approximates g-SUM in two passes (Theorem 3's upper
// bound: Algorithm 1 inside the recursive sketch).
type TwoPassEstimator = core.TwoPassEstimator

// ExactEstimator is the linear-space baseline.
type ExactEstimator = core.ExactEstimator

// UniversalSketch is the function-independent linear sketch supporting
// post-hoc g-SUM queries (§1.1.1).
type UniversalSketch = core.Universal

// NewOnePassEstimator builds the one-pass estimator for g.
func NewOnePassEstimator(g Func, opts Options) *OnePassEstimator {
	return core.NewOnePass(g, opts)
}

// NewTwoPassEstimator builds the two-pass estimator for g.
func NewTwoPassEstimator(g Func, opts Options) *TwoPassEstimator {
	return core.NewTwoPass(g, opts)
}

// NewExactEstimator builds the exact linear-space baseline for g.
func NewExactEstimator(g Func) *ExactEstimator { return core.NewExact(g) }

// NewUniversalSketch builds a function-independent sketch; set
// opts.Envelope to the max envelope of the functions you will query.
func NewUniversalSketch(opts Options) *UniversalSketch { return core.NewUniversal(opts) }

// Sketcher is the unified ingestion contract every estimator and raw
// sketch in this repository satisfies (see internal/engine).
type Sketcher = engine.Sketcher

// BatchSketcher is a Sketcher with an amortized bulk ingestion path:
// UpdateBatch leaves the counter state exactly as the equivalent
// sequence of Update calls would.
type BatchSketcher = engine.BatchSketcher

// ParallelEstimator is a one-pass estimator whose Process shards the
// stream across worker-owned sketches and merges them by linearity; the
// result is identical to a serial run with the same seed.
type ParallelEstimator = core.ParallelEstimator

// NewParallelEstimator builds the sharded, batched, concurrent front end
// of the one-pass estimator. workers < 1 means GOMAXPROCS.
func NewParallelEstimator(g Func, opts Options, workers int) *ParallelEstimator {
	return core.NewParallel(g, opts, workers)
}

// Window is a sliding-window g-SUM estimator: an exponential histogram
// of one-pass estimator buckets answering Σ g(|v_i|) over only the last
// W ticks of the stream (internal/window). Feed it with Update(item,
// delta, tick), move time with Advance(tick), and Estimate covers the
// trailing window — expired traffic is guaranteed gone once it is
// W+StaleBound() ticks behind the clock.
type Window = window.Estimator

// WindowConfig parameterizes a Window: W is the window length in ticks;
// K trades buckets for expiry granularity (0 = default 2).
type WindowConfig = window.Config

// NewWindow builds a sliding-window one-pass estimator for g. Like all
// estimators, two Windows built from the same (g, opts, cfg) — on any
// machines — merge exactly, provided their clocks advanced through the
// same tick sequence.
func NewWindow(g Func, opts Options, cfg WindowConfig) (*Window, error) {
	return window.NewEstimator(g, opts, cfg)
}
