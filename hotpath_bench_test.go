package universal

// Benchmarks for the lock-free hot path (internal/hotpath) and the
// multi-lane field arithmetic beneath it. BenchmarkProcessSharded and
// BenchmarkHotpathRing join the BenchmarkProcess* regression gate
// (BENCH_baseline.json via scripts/benchdiff); run the sharded one with
// `-cpu 1,4,8` to see the scaling curve recorded in EXPERIMENTS.md.

import (
	"sync"
	"testing"

	"repro/internal/hotpath"
	"repro/internal/stream"
	"repro/internal/xhash"
)

// BenchmarkProcessSharded is the ring-fed concurrent ingest of the same
// 128k-update stream BenchmarkProcessSerial/Parallel consume. The
// estimator is opened ONCE: Process neither constructs shards nor
// merges them (merging happens on Estimate), so this measures pure
// ingest throughput — partition, ring handoff, per-shard batched
// sketching.
func BenchmarkProcessSharded(b *testing.B) {
	s := processBenchStream()
	e, err := Open(Spec{Kind: KindSharded, G: "x^2", Workers: 8, Options: processBenchOpts(s)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Process(e, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*float64(s.Len())/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkHotpathRing measures the MPSC handoff alone: one producer
// pushing 64-update batches through a depth-64 ring to one draining
// consumer — the cost of a claim, publish, and release with no
// sketching behind it. Each iteration moves 1024 batches so the number
// is stable even under the CI gate's -benchtime 3x protocol.
func BenchmarkHotpathRing(b *testing.B) {
	const batches = 1024
	batch := make([]stream.Update, 64)
	for i := range batch {
		batch[i] = stream.Update{Item: uint64(i), Delta: 1}
	}
	r := hotpath.NewRing(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if _, ok := r.Dequeue(); !ok {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batches; j++ {
			r.Enqueue(batch)
		}
	}
	r.Close()
	wg.Wait()
	b.ReportMetric(float64(b.N)*batches*float64(len(batch))/b.Elapsed().Seconds(), "updates/s")
}

// gfChainLen is the dependent-chain length per iteration of the field
// arithmetic benches: long enough that one iteration is microseconds
// (stable under -benchtime 3x), matched between the scalar and lane
// variants so ns/op divides apples to apples — the lanes bench does 4x
// the multiplies per op and should take well under 4x the time.
const gfChainLen = 4096

// BenchmarkGFMulModScalar is the baseline: one dependent chain, so the
// loop runs at the LATENCY of a Mersenne multiply.
func BenchmarkGFMulModScalar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		acc := uint64(0x243f6a8885a308d3)
		for j := 0; j < gfChainLen; j++ {
			acc = xhash.MulMod(acc, 0x13198a2e03707344)
		}
		sinkU64 = acc
	}
}

// BenchmarkGFMulModLanes runs four independent chains through the
// unrolled 4-lane multiply: the out-of-order core overlaps them, so
// per-multiply cost approaches the multiplier's THROUGHPUT instead.
func BenchmarkGFMulModLanes(b *testing.B) {
	x := [4]uint64{0x452821e638d01377, 0xbe5466cf34e90c6c, 0xc0ac29b7c97c50dd, 0x3f84d5b5b5470917}
	for i := 0; i < b.N; i++ {
		acc := [4]uint64{0x243f6a8885a308d3, 0x13198a2e03707344, 0xa4093822299f31d0, 0x082efa98ec4e6c89}
		for j := 0; j < gfChainLen; j++ {
			xhash.MulMod4(&acc, &acc, &x)
		}
		sinkU64 = acc[0] ^ acc[1] ^ acc[2] ^ acc[3]
	}
}

// sinkU64 defeats dead-code elimination in the arithmetic benches.
var sinkU64 uint64
