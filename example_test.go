package universal_test

// Doc examples for the public API. `go test` compiles and runs these
// (and CI's docs gate runs them explicitly), so every snippet shown in
// godoc is guaranteed to build and to print exactly what it claims —
// the outputs are deterministic because all randomness flows from the
// explicit seeds.

import (
	"fmt"

	universal "repro"
)

// ExampleOpen is the unified front door: a Spec describes any estimator
// in the repository, Open builds it, and equal Specs fingerprint (and
// sketch) identically — the contract distributed deployments verify
// before merging snapshots.
func ExampleOpen() {
	spec := universal.Spec{
		Kind:    universal.KindOnePass,
		G:       "x^2",
		Options: universal.Options{N: 1 << 10, M: 16, Seed: 1},
	}
	est, err := universal.Open(spec)
	if err != nil {
		panic(err)
	}
	s := universal.NewStream(1 << 10)
	for i := uint64(0); i < 64; i++ {
		s.Add(i, int64(i%8)+1) // frequencies 1..8
	}
	if err := universal.Process(est, s); err != nil {
		panic(err)
	}

	exact, err := universal.Open(universal.Spec{Kind: universal.KindExact, G: "x^2",
		Options: universal.Options{N: 1 << 10, Seed: 1}})
	if err != nil {
		panic(err)
	}
	if err := universal.Process(exact, s); err != nil {
		panic(err)
	}
	drifted := spec
	drifted.Options.Seed = 2
	fmt.Printf("exact %.0f, estimate within 25%%: %v\n",
		exact.Estimate(), within(est.Estimate(), exact.Estimate(), 0.25))
	fmt.Printf("same spec merges: %v; drifted seed merges: %v\n",
		spec.Fingerprint() == spec.Fingerprint(),
		spec.Fingerprint() == drifted.Fingerprint())
	// Output:
	// exact 1632, estimate within 25%: true
	// same spec merges: true; drifted seed merges: false
}

// ExampleNewOnePassEstimator estimates F2 = Σ v_i² in one pass over a
// small turnstile stream and compares against the exact sum.
func ExampleNewOnePassEstimator() {
	g := universal.F2()               // g(x) = x²
	s := universal.NewStream(1 << 10) // domain [0, 1024)
	for i := uint64(0); i < 64; i++ {
		s.Add(i, int64(i%8)+1) // frequencies 1..8
	}
	s.Add(3, 2)
	s.Add(3, -2) // turnstile: deletions cancel

	est := universal.NewOnePassEstimator(g, universal.Options{N: 1 << 10, M: 16, Seed: 1})
	est.Process(s)

	exact := universal.NewExactEstimator(g)
	exact.Process(s)
	fmt.Printf("exact %.0f, estimate within 25%%: %v\n",
		exact.Estimate(), within(est.Estimate(), exact.Estimate(), 0.25))
	// Output:
	// exact 1632, estimate within 25%: true
}

// ExampleClassify runs the paper's zero-one laws on two catalog
// functions: x² is one-pass tractable, 1/x is not even two-pass.
func ExampleClassify() {
	cfg := universal.DefaultCheckConfig()
	cfg.M = 1 << 12 // small witness range keeps the example fast

	for _, g := range []universal.Func{universal.F2(), universal.Reciprocal()} {
		c := universal.Classify(g, cfg)
		fmt.Printf("%s: one-pass %v, two-pass %v\n", g.Name(), c.OnePass, c.TwoPass)
	}
	// Output:
	// x^2: one-pass tractable, two-pass tractable
	// 1/x: one-pass intractable, two-pass intractable
}

// ExampleNewParallelEstimator shards a stream across 4 workers; the
// merged estimate is bit-identical to a serial run with the same seed
// (the sketches are linear, so worker count never changes the counters).
func ExampleNewParallelEstimator() {
	g := universal.F2()
	s := universal.NewStream(1 << 10)
	for i := uint64(0); i < 512; i++ {
		s.Add(i%97, 1)
	}
	opts := universal.Options{N: 1 << 10, M: 64, Seed: 5}

	serial := universal.NewOnePassEstimator(g, opts)
	serial.Process(s)

	parallel := universal.NewParallelEstimator(g, opts, 4)
	if err := parallel.Process(s); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("parallel == serial:", parallel.Estimate() == serial.Estimate())
	// Output:
	// parallel == serial: true
}

// ExampleNewUniversalSketch answers post-hoc g-SUM queries from one
// function-independent sketch (the §1.1.1 application): sketch once,
// query for any function in the family afterwards.
func ExampleNewUniversalSketch() {
	s := universal.NewStream(1 << 10)
	for i := uint64(0); i < 100; i++ {
		s.Add(i, int64(i%4)+1)
	}
	u := universal.NewUniversalSketch(universal.Options{N: 1 << 10, M: 8, Seed: 7, Envelope: 16})
	u.Process(s)

	exactF1 := universal.NewExactEstimator(universal.F1())
	exactF1.Process(s)
	fmt.Printf("F1 exact %.0f, post-hoc estimate within 25%%: %v\n",
		exactF1.Estimate(), within(u.EstimateFor(universal.F1()), exactF1.Estimate(), 0.25))
	// Output:
	// F1 exact 250, post-hoc estimate within 25%: true
}

// ExampleWindow estimates F2 over only the last 4 ticks of a stream:
// early traffic expires as the clock advances, so the windowed estimate
// tracks the recent suffix, not the whole history.
func ExampleWindow() {
	g := universal.F2()
	win, err := universal.NewWindow(g,
		universal.Options{N: 1 << 10, M: 1 << 10, Seed: 2},
		universal.WindowConfig{W: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Ticks 0..9: at tick t, items 0..15 each arrive once.
	for tick := uint64(0); tick < 10; tick++ {
		for i := uint64(0); i < 16; i++ {
			if err := win.Update(i, 1, tick); err != nil {
				fmt.Println(err)
				return
			}
		}
	}
	// The window covers ticks 6..9 (plus at most StaleBound stale
	// ticks): each item has frequency 4..4+StaleBound there, far below
	// its all-time frequency 10.
	est := win.Estimate()
	wholeStream := 16 * float64(10*10)
	windowOnly := 16 * float64(4*4)
	maxCovered := 16 * float64((4+win.StaleBound())*(4+win.StaleBound()))
	fmt.Printf("estimate in [window, window+stale]: %v\n",
		est >= windowOnly && est <= maxCovered)
	fmt.Printf("well below whole-stream F2: %v\n", est < wholeStream/2)
	// Output:
	// estimate in [window, window+stale]: true
	// well below whole-stream F2: true
}

// within reports |est - exact| <= frac * exact.
func within(est, exact, frac float64) bool {
	diff := est - exact
	if diff < 0 {
		diff = -diff
	}
	return diff <= frac*exact
}
