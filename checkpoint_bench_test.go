package universal

// BenchmarkCheckpoint gates the daemon's checkpoint serialization cost
// (scripts/benchdiff, alongside the Process/Window/Open families): one
// iteration is a full atomic checkpoint of a loaded daemon — marshal
// the sketch under the state lock, write a temp file, fsync, rename.
// The durability loop runs this every -checkpoint-every interval, so a
// regression here taxes every running daemon, not just restarts.

import (
	"testing"

	"repro/internal/backend"
	"repro/internal/daemon"
)

func BenchmarkCheckpoint(b *testing.B) {
	s := processBenchStream()
	spec := backend.Spec{Kind: backend.KindOnePass, G: "x^2", Options: processBenchOpts(s)}
	srv, err := daemon.NewServer(spec)
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.IngestBatch(s.Updates()); err != nil {
		b.Fatal(err)
	}
	path := daemon.CheckpointPath(b.TempDir())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.WriteCheckpoint(path); err != nil {
			b.Fatal(err)
		}
	}
}
