// Adspam: the Section 1.1.2 utility-aggregate application. An advertising
// service bills per click, but discounts users whose click counts look
// like bot traffic — a non-monotonic per-user fee g(clicks). The total
// bill Σ_users g(clicks_user) is a g-SUM over the click stream, estimated
// here in one pass with sub-polynomial space.
//
//	go run ./examples/adspam
package main

import (
	"fmt"
	"io"
	"math"
	"os"

	universal "repro"
	"repro/internal/stream"
	"repro/internal/util"
)

// fee is the per-user billing curve: linear in clicks up to a soft knee,
// then flattening and slowly discounting toward a floor — suspicious
// volumes earn a progressively smaller marginal fee, but the discount is
// only logarithmic so the curve stays slow-dropping (hence tractable,
// unlike a hard exponential cutoff; see examples/classify).
func fee(clicks uint64) float64 {
	x := float64(clicks)
	return x / (1 + math.Log2(1+x/1000))
}

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "adspam:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	const (
		nUsers = 1 << 14
		m      = 1 << 20
		seed   = 7
	)
	g := universal.Normalize("click-fee", fee)

	// Classify first: is this billing curve even sketchable?
	c := universal.Classify(g, universal.DefaultCheckConfig())
	fmt.Fprintln(w, c.String())
	fmt.Fprintln(w)

	// Click stream: 3000 regular users (tens to hundreds of clicks), a
	// handful of power users, and a few bots with huge click counts.
	rng := util.NewSplitMix64(seed)
	s := stream.New(nUsers)
	used := make(map[uint64]struct{})
	user := func() uint64 {
		for {
			u := rng.Uint64n(nUsers)
			if _, ok := used[u]; !ok {
				used[u] = struct{}{}
				return u
			}
		}
	}
	for i := 0; i < 3000; i++ {
		s.AddCopies(user(), 10+rng.Int63n(300))
	}
	for i := 0; i < 40; i++ {
		s.AddCopies(user(), 2000+rng.Int63n(8000))
	}
	for i := 0; i < 6; i++ {
		s.AddCopies(user(), 200000+rng.Int63n(400000)) // bots
	}

	exact := universal.NewExactEstimator(g)
	exact.Process(s)
	truth := exact.Estimate()

	est := universal.NewOnePassEstimator(g, universal.Options{
		N: nUsers, M: m, Eps: 0.2, Seed: seed,
	})
	est.Process(s)
	got := est.Estimate()

	scale := g.Eval(1) // 1.0 by normalization; fee(1)/scale recovers dollars
	_ = scale
	fmt.Fprintf(w, "total fee (exact):    %12.1f fee-units  (space %d B)\n", truth*fee(1), exact.SpaceBytes())
	fmt.Fprintf(w, "total fee (sketched): %12.1f fee-units  (space %d B)\n", got*fee(1), est.SpaceBytes())
	fmt.Fprintf(w, "relative error: %.4f (target 0.2)\n", util.RelErr(got, truth))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "the discount makes g non-monotonic in marginal terms; the paper's")
	fmt.Fprintln(w, "characterization says the sum is still 1-pass sketchable because the")
	fmt.Fprintln(w, "curve is slow-jumping, slow-dropping, and predictable.")
	return nil
}
