// Distinguisher: the ShortLinearCombination problem of Appendix C in
// action. A stream promises frequencies in {±a, ±b, 0}; did someone
// plant a ±c? Proposition 49's algorithm answers with t = Õ(n/q²)
// counters, where q is the minimal Σ|q_i| with Σ q_i u_i = c — and
// Theorem 48 says no algorithm can do asymptotically better.
//
//	go run ./examples/distinguisher
package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/comm"
	"repro/internal/stream"
	"repro/internal/util"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distinguisher:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	const (
		a, b, c = int64(31), int64(12), int64(1)
		n       = 1 << 12
		items   = 300
	)

	q, ok := comm.MinCombination([]int64{a, b}, c, int(a+b))
	if !ok {
		return fmt.Errorf("no linear combination of (%d,%d) reaching %d", a, b, c)
	}
	fmt.Fprintf(w, "(a,b,c) = (%d,%d,%d): minimal combination %d·%d + %d·%d = %d, q = Σ|q_i| = %d\n",
		a, b, c, q[0], a, q[1], b, c, comm.NormOf(q))

	// Sound residue radius: how many colliding b-items a bucket tolerates.
	l := int64(0)
	for comm.ResidueSetsDisjoint(a, b, c, l+1) == nil {
		l++
	}
	fmt.Fprintf(w, "sound residue radius l = %d; base residues mod %d: %v\n\n",
		l, a, comm.SortedResidues(a, b, l))

	for _, t := range []int{16, 64, 256, 1024} {
		correct := 0
		const trials = 30
		for trial := 0; trial < trials; trial++ {
			yes, no := comm.NewDistPair(comm.DistConfig{
				A: a, B: b, C: c, N: n, FillA: items, FillB: items,
				Seed: uint64(trial) * 13,
			}, trial)
			feed := func(s *stream.Stream) *comm.DistSolver {
				ds := comm.NewDistSolver(a, b, c, t, l,
					util.NewSplitMix64(uint64(trial)*29+uint64(t)))
				s.Each(func(u stream.Update) { ds.Update(u.Item, u.Delta) })
				return ds
			}
			if feed(yes).Detect() && !feed(no).Detect() {
				correct++
			}
		}
		ds := comm.NewDistSolver(a, b, c, t, l, util.NewSplitMix64(1))
		fmt.Fprintf(w, "t = %4d buckets (%5d B): accuracy %5.1f%%\n",
			t, ds.SpaceBytes(), 100*float64(correct)/float64(trials))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "theory: reliable detection from t ≈ n/q² = %d/%d ≈ %d buckets\n",
		items, comm.NormOf(q)*comm.NormOf(q), items/int(comm.NormOf(q)*comm.NormOf(q))+1)
	fmt.Fprintln(w, "(with polylog slack); below that, bucket collisions exceed the residue")
	fmt.Fprintln(w, "radius and the promise cannot be decided — Theorem 48's Ω(n/q²).")
	return nil
}
