// Loglikelihood: the Section 1.1.1 application. Stream coordinates are
// i.i.d. samples from an unknown discrete distribution; the negative
// log-likelihood ℓ(θ) = -Σ_i log p(v_i; θ) is a g-SUM for the generally
// non-monotonic g_θ(x) = -log p(x; θ). One universal (function-
// independent) sketch answers ℓ(θ) for a whole grid of θ after a single
// pass, yielding a streaming approximate maximum-likelihood estimate.
//
//	go run ./examples/loglikelihood
package main

import (
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/mle"
	"repro/internal/stream"
	"repro/internal/util"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loglikelihood:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	const (
		n    = 1 << 11
		maxX = 32
		seed = 19
	)

	// Ground truth: a Poisson mixture — the paper's own example of a
	// distribution whose -log p is non-monotonic.
	truth := mle.PoissonMixture{Lambda: 0.7, Alpha: 0.25, Beta: 6, Max: maxX}
	fmt.Fprintf(w, "sampling %d coordinates from %s\n", n, truth.Name())

	s := stream.IIDSamples(stream.GenConfig{N: n, M: maxX, Seed: seed},
		func(rng *util.SplitMix64) int64 { return int64(truth.Sample(rng)) })

	// Parameter grid Θ: sweep the second component's mean β.
	betas := []float64{2, 3, 4, 5, 6, 7, 8, 10}
	models := make([]*mle.Model, 0, len(betas))
	for _, b := range betas {
		m, err := mle.NewModel(mle.PoissonMixture{Lambda: 0.7, Alpha: 0.25, Beta: b, Max: maxX})
		if err != nil {
			return err
		}
		models = append(models, m)
	}

	est := mle.NewEstimator(models, core.Options{
		N: n, M: maxX, Eps: 0.2, Seed: seed, Lambda: 1.0 / 8, WidthFactor: 0.5,
	}, 3)
	est.Process(s)

	lls := est.LogLikelihoods()
	v := s.Vector()
	fmt.Fprintln(w)
	fmt.Fprintln(w, "  β      ℓ̂(θ) sketch    ℓ(θ) exact    rel err")
	bestIdx, bestLL := 0, math.Inf(1)
	for i, m := range models {
		exact := m.ExactLogLikelihood(v, n)
		if exact < bestLL {
			bestIdx, bestLL = i, exact
		}
		fmt.Fprintf(w, "  %-5g  %12.2f  %12.2f    %.4f\n",
			betas[i], lls[i], exact, util.RelErr(lls[i], exact))
	}
	idx, _ := est.ArgMin()
	fmt.Fprintln(w)
	fmt.Fprintf(w, "approximate MLE: β̂ = %g (exact grid minimizer: β* = %g)\n",
		betas[idx], betas[bestIdx])
	fmt.Fprintf(w, "guarantee: ℓ(β̂) <= (1+ε) ℓ(β*): %.2f <= %.2f\n",
		models[idx].ExactLogLikelihood(v, n), 1.2*bestLL)
	fmt.Fprintf(w, "sketch space: %d B for %d queries from one pass\n",
		est.SpaceBytes(), len(betas))
	return nil
}
