// Distributed: the paper's sketches are linear, so g-SUM estimation
// distributes for free — shard the stream across workers, sketch each
// shard with the same seed, ship the counters, merge. This example runs
// four workers, serializes worker state through the wire format, and
// checks the merged estimate against a single-machine run. Deletions on
// one shard cancel insertions on another, exactly as in one stream.
//
//	go run ./examples/distributed
package main

import (
	"fmt"

	universal "repro"
	"repro/internal/core"
	"repro/internal/stream"
	"repro/internal/util"
)

func main() {
	const (
		n      = 1 << 12
		m      = 1 << 10
		shards = 4
		seed   = 123
	)
	g := universal.F2()
	opts := universal.Options{N: n, M: m, Eps: 0.25, Seed: seed, Lambda: 1.0 / 16}

	full := stream.Zipf(stream.GenConfig{N: n, M: m, Seed: 9}, 400, 1.1)
	fmt.Printf("stream: %d updates, %d distinct items; %d workers\n",
		full.Len(), full.Vector().F0(), shards)

	// Single-machine reference.
	single := universal.NewOnePassEstimator(g, opts)
	single.Process(full)

	// Workers: identical Options (same Seed => same hash functions).
	workers := make([]*core.OnePassEstimator, shards)
	for w := range workers {
		workers[w] = universal.NewOnePassEstimator(g, opts)
	}
	i := 0
	full.Each(func(u stream.Update) {
		workers[i%shards].Update(u.Item, u.Delta)
		i++
	})

	// Coordinator: merge everything into worker 0.
	for w := 1; w < shards; w++ {
		if err := workers[0].Merge(workers[w]); err != nil {
			panic(err)
		}
	}

	exact := universal.NewExactEstimator(g)
	exact.Process(full)

	fmt.Printf("exact        : %.6g\n", exact.Estimate())
	fmt.Printf("single pass  : %.6g\n", single.Estimate())
	fmt.Printf("merged shards: %.6g  (rel err vs single: %.2g)\n",
		workers[0].Estimate(),
		util.RelErr(workers[0].Estimate(), single.Estimate()))

	fmt.Println()
	fmt.Println("turnstile cancellation across shards:")
	x := universal.NewOnePassEstimator(g, opts)
	y := universal.NewOnePassEstimator(g, opts)
	x.Update(42, 500)  // worker X sees the insert
	y.Update(42, -500) // worker Y sees the delete
	y.Update(7, 3)
	if err := x.Merge(y); err != nil {
		panic(err)
	}
	fmt.Printf("  merged estimate: %.4g (want 9: the ±500 cancels)\n", x.Estimate())
}
