// Distributed: the paper's sketches are linear, so g-SUM estimation
// distributes for free — shard the stream across workers, sketch each
// shard with the same seed, merge. This example shows both faces of
// that fact:
//
//   - the sharded parallel ingestion engine (universal.NewParallelEstimator),
//     which partitions the stream across GOMAXPROCS-style worker shards
//     and merges them back, producing the SAME estimate as a serial run;
//
//   - manual multi-machine style sharding with explicit Merge calls,
//     including turnstile cancellation: deletions on one shard cancel
//     insertions on another, exactly as in one stream.
//
//     go run ./examples/distributed
package main

import (
	"fmt"
	"io"
	"os"

	universal "repro"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	const (
		n       = 1 << 12
		m       = 1 << 10
		shards  = 4
		workers = 4
		seed    = 123
	)
	g := universal.F2()
	opts := universal.Options{N: n, M: m, Eps: 0.25, Seed: seed, Lambda: 1.0 / 16}

	// 90 distinct items keeps the candidate trackers inside the regime
	// where parallel and serial estimates agree bit-for-bit.
	full := stream.Zipf(stream.GenConfig{N: n, M: m, Seed: 9}, 90, 1.1)
	fmt.Fprintf(w, "stream: %d updates, %d distinct items\n",
		full.Len(), full.Vector().F0())

	// Single-machine serial reference.
	single := universal.NewOnePassEstimator(g, opts)
	single.Process(full)

	// The sharded parallel engine: same Options (same Seed => same hash
	// functions), contiguous chunks, linearity-based merge.
	par := universal.NewParallelEstimator(g, opts, workers)
	if err := par.Process(full); err != nil {
		return err
	}

	exact := universal.NewExactEstimator(g)
	exact.Process(full)

	fmt.Fprintf(w, "exact          : %.6g\n", exact.Estimate())
	fmt.Fprintf(w, "serial 1-pass  : %.6g\n", single.Estimate())
	fmt.Fprintf(w, "parallel x%d    : %.6g\n", par.Workers(), par.Estimate())
	if par.Estimate() == single.Estimate() {
		fmt.Fprintln(w, "parallel == serial: exact agreement (linearity + same seed)")
	} else {
		return fmt.Errorf("parallel %.17g diverged from serial %.17g",
			par.Estimate(), single.Estimate())
	}

	// Manual sharding, multi-machine style: each "machine" sketches its
	// own shard; a coordinator merges everything into shard 0.
	sharded := make([]*universal.OnePassEstimator, shards)
	for i := range sharded {
		sharded[i] = universal.NewOnePassEstimator(g, opts)
	}
	i := 0
	full.Each(func(u stream.Update) {
		sharded[i%shards].Update(u.Item, u.Delta)
		i++
	})
	for _, worker := range sharded[1:] {
		if err := sharded[0].Merge(worker); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "merged shards  : %.6g (round-robin split, coordinator merge)\n",
		sharded[0].Estimate())

	fmt.Fprintln(w)
	fmt.Fprintln(w, "turnstile cancellation across shards:")
	x := universal.NewOnePassEstimator(g, opts)
	y := universal.NewOnePassEstimator(g, opts)
	x.Update(42, 500)  // worker X sees the insert
	y.Update(42, -500) // worker Y sees the delete
	y.Update(7, 3)
	if err := x.Merge(y); err != nil {
		return err
	}
	fmt.Fprintf(w, "  merged estimate: %.4g (want 9: the ±500 cancels)\n", x.Estimate())
	return nil
}
