// Distributed: the paper's sketches are linear, so g-SUM estimation
// distributes for free — shard the stream across workers, sketch each
// shard from the same Spec, merge. This example shows three faces of
// that fact:
//
//   - the parallel kind (Kind: "parallel"), whose Process partitions the
//     stream across worker shards and merges them back, producing the
//     SAME estimate as a serial run;
//
//   - manual multi-machine style sharding: every "machine" opens the
//     same Spec, sketches its own shard, and a coordinator folds the
//     shards with universal.Merge — including turnstile cancellation,
//     where deletions on one shard cancel insertions on another;
//
//   - the Spec fingerprint, the value distributed deployments exchange
//     to prove their configurations match before shipping snapshots.
//
//     go run ./examples/distributed
package main

import (
	"fmt"
	"io"
	"os"

	universal "repro"
	"repro/internal/stream"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	const (
		n       = 1 << 12
		m       = 1 << 10
		shards  = 4
		workers = 4
		seed    = 123
	)
	spec := universal.Spec{
		Kind:    universal.KindOnePass,
		G:       universal.F2().Name(),
		Options: universal.Options{N: n, M: m, Eps: 0.25, Seed: seed, Lambda: 1.0 / 16},
	}

	// 90 distinct items keeps the candidate trackers inside the regime
	// where parallel and serial estimates agree bit-for-bit.
	full := stream.Zipf(stream.GenConfig{N: n, M: m, Seed: 9}, 90, 1.1)
	fmt.Fprintf(w, "stream: %d updates, %d distinct items\n",
		full.Len(), full.Vector().F0())

	// Single-machine serial reference.
	single, err := universal.Open(spec)
	if err != nil {
		return err
	}
	if err := universal.Process(single, full); err != nil {
		return err
	}

	// The parallel kind: same Spec plus Workers. Same Seed => same hash
	// functions; contiguous chunks; linearity-based merge.
	pspec := spec
	pspec.Kind = universal.KindParallel
	pspec.Workers = workers
	par, err := universal.Open(pspec)
	if err != nil {
		return err
	}
	if err := universal.Process(par, full); err != nil {
		return err
	}

	exact, err := universal.Open(universal.Spec{Kind: universal.KindExact, G: spec.G,
		Options: universal.Options{N: n, M: m, Seed: seed}})
	if err != nil {
		return err
	}
	if err := universal.Process(exact, full); err != nil {
		return err
	}

	fmt.Fprintf(w, "exact          : %.6g\n", exact.Estimate())
	fmt.Fprintf(w, "serial 1-pass  : %.6g\n", single.Estimate())
	fmt.Fprintf(w, "parallel x%d    : %.6g\n", workers, par.Estimate())
	if par.Estimate() == single.Estimate() {
		fmt.Fprintln(w, "parallel == serial: exact agreement (linearity + same seed)")
	} else {
		return fmt.Errorf("parallel %.17g diverged from serial %.17g",
			par.Estimate(), single.Estimate())
	}

	// Manual sharding, multi-machine style: each "machine" opens the SAME
	// Spec (that is the whole seed-discipline rule), sketches its own
	// shard, and a coordinator merges everything into shard 0.
	sharded := make([]universal.Estimator, shards)
	for i := range sharded {
		if sharded[i], err = universal.Open(spec); err != nil {
			return err
		}
	}
	i := 0
	full.Each(func(u stream.Update) {
		sharded[i%shards].Update(u.Item, u.Delta)
		i++
	})
	for _, worker := range sharded[1:] {
		if err := universal.Merge(sharded[0], worker); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "merged shards  : %.6g (round-robin split, coordinator merge)\n",
		sharded[0].Estimate())

	// The fingerprint two daemons would exchange before merging: a Spec
	// built independently from the same fields (as a second machine
	// would build it) agrees, and changing any field (here the seed)
	// breaks it.
	twin := universal.Spec{
		Kind:    universal.KindOnePass,
		G:       universal.F2().Name(),
		Options: universal.Options{N: n, M: m, Eps: 0.25, Seed: seed, Lambda: 1.0 / 16},
	}
	drifted := spec
	drifted.Options.Seed = seed + 1
	fmt.Fprintln(w)
	fmt.Fprintf(w, "spec fingerprints: independently built spec match = %v, drifted seed match = %v\n",
		spec.Fingerprint() == twin.Fingerprint(), spec.Fingerprint() == drifted.Fingerprint())

	fmt.Fprintln(w, "turnstile cancellation across shards:")
	x, err := universal.Open(spec)
	if err != nil {
		return err
	}
	y, err := universal.Open(spec)
	if err != nil {
		return err
	}
	x.Update(42, 500)  // worker X sees the insert
	y.Update(42, -500) // worker Y sees the delete
	y.Update(7, 3)
	if err := universal.Merge(x, y); err != nil {
		return err
	}
	fmt.Fprintf(w, "  merged estimate: %.4g (want 9: the ±500 cancels)\n", x.Estimate())
	return nil
}
