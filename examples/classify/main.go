// Classify: run the paper's zero-one laws (Theorems 2 and 3) on the
// catalog of worked examples plus a user-defined function, printing the
// property verdicts and the 1-pass / 2-pass tractability conclusions.
//
//	go run ./examples/classify
package main

import (
	"fmt"
	"math"

	universal "repro"
	"repro/internal/gfunc"
)

func main() {
	cfg := universal.DefaultCheckConfig()

	fmt.Println("Zero-one law classification (Definitions 6-9, Theorems 2-3)")
	fmt.Println()
	for _, entry := range gfunc.Catalog() {
		c := universal.Classify(entry.Func, cfg)
		fmt.Println(c.String())
	}

	// A custom function: the billing curve from the ad-spam example —
	// see examples/adspam for the full application. It rises linearly,
	// then decays once the click count looks like bot traffic.
	custom := universal.Normalize("adspam-fee", func(x uint64) float64 {
		fx := float64(x)
		return fx * math.Exp(-fx/500)
	})
	c := universal.Classify(custom, cfg)
	fmt.Println()
	fmt.Println("custom function:")
	fmt.Println(c.String())
	fmt.Println()
	fmt.Println("interpretation: the exponential decay is polynomial-or-faster, so the")
	fmt.Println("fee curve fails slow-dropping and no sub-polynomial sketch exists for it")
	fmt.Println("(Lemma 23); examples/adspam uses a slow-dropping discount curve instead.")
}
