// Classify: run the paper's zero-one laws (Theorems 2 and 3) on the
// catalog of worked examples plus a user-defined function, printing the
// property verdicts and the 1-pass / 2-pass tractability conclusions.
//
//	go run ./examples/classify
package main

import (
	"fmt"
	"io"
	"math"
	"os"

	universal "repro"
	"repro/internal/gfunc"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	cfg := universal.DefaultCheckConfig()

	fmt.Fprintln(w, "Zero-one law classification (Definitions 6-9, Theorems 2-3)")
	fmt.Fprintln(w)
	for _, entry := range gfunc.Catalog() {
		c := universal.Classify(entry.Func, cfg)
		fmt.Fprintln(w, c.String())
	}

	// A custom function: the billing curve from the ad-spam example —
	// see examples/adspam for the full application. It rises linearly,
	// then decays once the click count looks like bot traffic.
	custom := universal.Normalize("adspam-fee", func(x uint64) float64 {
		fx := float64(x)
		return fx * math.Exp(-fx/500)
	})
	c := universal.Classify(custom, cfg)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "custom function:")
	fmt.Fprintln(w, c.String())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "interpretation: the exponential decay is polynomial-or-faster, so the")
	fmt.Fprintln(w, "fee curve fails slow-dropping and no sub-polynomial sketch exists for it")
	fmt.Fprintln(w, "(Lemma 23); examples/adspam uses a slow-dropping discount curve instead.")
	return nil
}
