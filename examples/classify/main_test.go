package main

import (
	"bytes"
	"strings"
	"testing"
)

// Smoke test: the example must run cleanly and print the landmarks a
// reader is told to look for. Everything is seeded, so the output is
// deterministic.
func TestRun(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Zero-one law classification",
		"custom function:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n---\n%s", want, out)
		}
	}
}
