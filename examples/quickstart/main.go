// Quickstart: describe an estimator with a Spec, build it with Open,
// stream a turnstile stream through it, and compare against the exact
// linear-space baseline — the whole public API in one sitting.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"os"

	universal "repro"
	"repro/internal/stream"
	"repro/internal/util"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	const (
		n    = 1 << 12 // domain size
		m    = 1 << 10 // max |frequency|
		seed = 42
	)

	// A zipfian turnstile stream: 400 items, heavy-tailed frequencies,
	// with insertions and deletions mixed in.
	s := stream.Zipf(stream.GenConfig{N: n, M: m, Seed: seed}, 400, 1.1)
	fmt.Fprintf(w, "stream: %d updates over domain [0,%d), max |v_i| = %d\n",
		s.Len(), s.N(), s.Vector().MaxAbs())

	// g(x) = x² lg(1+x): slow-jumping, slow-dropping, predictable — so by
	// Theorem 2 it is 1-pass tractable. A Spec names it by its catalog
	// name; the same Spec opened anywhere builds the same sketch.
	g := universal.X2Log()
	spec := universal.Spec{
		Kind:    universal.KindOnePass,
		G:       g.Name(),
		Options: universal.Options{N: n, M: m, Eps: 0.25, Seed: seed},
	}

	exact, err := universal.Open(universal.Spec{Kind: universal.KindExact, G: g.Name(),
		Options: universal.Options{N: n, M: m, Seed: seed}})
	if err != nil {
		return err
	}
	if err := universal.Process(exact, s); err != nil {
		return err
	}

	est, err := universal.Open(spec)
	if err != nil {
		return err
	}
	if err := universal.Process(est, s); err != nil {
		return err
	}

	truth := exact.Estimate()
	got := est.Estimate()
	fmt.Fprintf(w, "g = %s\n", g.Name())
	fmt.Fprintf(w, "  exact  g-SUM: %.6g   (space %6d B, grows with distinct items)\n",
		truth, exact.SpaceBytes())
	fmt.Fprintf(w, "  1-pass g-SUM: %.6g   (space %6d B, sub-polynomial)\n",
		got, est.SpaceBytes())
	fmt.Fprintf(w, "  relative error: %.4f (target ε = 0.25)\n", util.RelErr(got, truth))

	// The same in two passes (Algorithm 1): exact frequencies for the
	// heavy hitters, no predictability requirement. Only the Kind
	// changes; Process knows the two-pass kind replays the stream.
	twoSpec := spec
	twoSpec.Kind = universal.KindTwoPass
	twoSpec.Options.Seed = seed + 1
	two, err := universal.Open(twoSpec)
	if err != nil {
		return err
	}
	if err := universal.Process(two, s); err != nil {
		return err
	}
	got2 := two.Estimate()
	fmt.Fprintf(w, "  2-pass g-SUM: %.6g   relative error %.4f\n", got2, util.RelErr(got2, truth))
	return nil
}
