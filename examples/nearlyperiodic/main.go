// Nearlyperiodic: the exotic boundary of the zero-one law. The function
// g_np(x) = 2^{-ι(x)} (ι = index of the lowest set bit) drops
// polynomially — so the law's slow-dropping condition fails — yet the
// INDEX reduction that would prove intractability also fails, because
// g_np(x + 2^k) = g_np(x): the function nearly repeats at every period.
// Appendix D.1 gives a dedicated 1-pass algorithm; this example runs it,
// then shows the Theorem 64 instability: a δ-perturbation of g_np is
// honestly intractable.
//
//	go run ./examples/nearlyperiodic
package main

import (
	"fmt"
	"io"
	"os"

	universal "repro"
	"repro/internal/gfunc"
	"repro/internal/heavy"
	"repro/internal/stream"
	"repro/internal/util"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nearlyperiodic:", err)
		os.Exit(1)
	}
}

// run holds the example body; it writes to w so the smoke tests can
// assert on the output.
func run(w io.Writer) error {
	g := universal.Gnp()
	cfg := universal.DefaultCheckConfig()
	c := universal.Classify(g, cfg)
	fmt.Fprintln(w, c.String())
	fmt.Fprintln(w)

	// A planted instance: one item with an odd frequency (g_np = 1) among
	// items whose frequencies are multiples of 1024 (g_np <= 2^-10).
	const n = 1 << 16
	rng := util.NewSplitMix64(5)
	s := stream.New(n)
	want := rng.Uint64n(n)
	s.Add(want, 54321) // odd
	for i := 0; i < 60; i++ {
		it := rng.Uint64n(n)
		if it != want {
			s.Add(it, 1024*(1+rng.Int63n(64)))
		}
	}

	gh := heavy.NewGnpHeavy(heavy.GnpHeavyConfig{N: n, Lambda: 0.3, Substreams: 64},
		util.NewSplitMix64(99))
	s.Each(func(u stream.Update) { gh.Update(u.Item, u.Delta) })
	cover := gh.Cover()

	fmt.Fprintf(w, "planted item %d (g_np = 1) among %d high-ι items\n", want, 60)
	fmt.Fprintf(w, "algorithm space: %d B (linear storage would be %d B)\n",
		gh.SpaceBytes(), n*16)
	if cover.Contains(want) {
		for _, e := range cover {
			if e.Item == want {
				fmt.Fprintf(w, "recovered item %d with exact weight %.4g\n", e.Item, e.Weight)
			}
		}
	} else {
		fmt.Fprintln(w, "planted item not recovered (rerun with another seed)")
	}

	// Theorem 64: g_np is one δ-nudge away from honest intractability.
	h := gfunc.PerturbNearlyPeriodic(g, 0.5, cfg)
	ch := universal.Classify(h, cfg)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Θ(g_np, perturbed) = %.4f (δ = 0.5)\n", gfunc.Theta(g, h, cfg.M))
	fmt.Fprintln(w, ch.String())
	fmt.Fprintln(w)
	fmt.Fprintln(w, "the perturbation breaks the near-repetition at every period, so the")
	fmt.Fprintln(w, "INDEX reduction of Lemma 23 applies and the function is intractable —")
	fmt.Fprintln(w, "nearly periodic functions sit on a knife's edge (Appendix D.5).")
	return nil
}
