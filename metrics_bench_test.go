package universal

// The BenchmarkMetrics* family gates the observability surface
// (scripts/benchdiff, alongside the DaemonIngest family): Scrape prices
// one full Prometheus render of a populated daemon registry — the cost
// an operator's scrape interval pays — and IngestScraped re-runs the
// in-process ingest ceiling with a scraper rendering the registry in a
// tight loop for the whole measurement. The counters themselves are
// lock-free atomics, so the only coupling left is the estimate/space
// GaugeFuncs briefly taking the state lock per render; even this
// adversarial back-to-back scraper (thousands of times any real scrape
// cadence) costs the ceiling well under 2x, which is the bar this gate
// holds. The instrumentation cost on the undisturbed hot path is gated
// separately: BenchmarkDaemonIngest* must stay within benchdiff noise
// of their pre-instrumentation baselines.

import (
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
)

// BenchmarkMetricsScrape renders a live daemon's full registry once per
// iteration, after real traffic has populated every counter and
// histogram family.
func BenchmarkMetricsScrape(b *testing.B) {
	s := processBenchStream()
	srv := ingestBenchServer(b)
	if err := srv.IngestBatch(s.Updates()[:4096]); err != nil {
		b.Fatal(err)
	}
	if err := srv.WriteCheckpoint(b.TempDir() + "/ckpt"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.Metrics().WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonIngestScraped is the in-process ingest ceiling with a
// concurrent scraper: a background goroutine renders the registry in a
// tight loop for the whole measurement. Its ns/op staying within noise
// of BenchmarkDaemonIngestInProcess is the proof that scrape traffic
// cannot disturb the ingest hot path.
func BenchmarkDaemonIngestScraped(b *testing.B) {
	s := processBenchStream()
	srv := ingestBenchServer(b)
	updates := s.Updates()
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for !stop.Load() {
			_ = srv.Metrics().WritePrometheus(io.Discard)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(updates); lo += engine.DefaultBatchSize {
			hi := lo + engine.DefaultBatchSize
			if hi > len(updates) {
				hi = len(updates)
			}
			if err := srv.IngestBatch(updates[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	stop.Store(true)
	<-done
}
