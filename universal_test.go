package universal

// Tests of the public API surface: everything a downstream user touches
// must work through the root package alone.

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stream"
	"repro/internal/util"
)

func TestPublicQuickstartFlow(t *testing.T) {
	g := X2Log()
	s := NewStream(1 << 12)
	s.Add(7, 3)
	s.Add(9, -2)
	s.Add(7, -1)

	est := NewOnePassEstimator(g, Options{N: 1 << 12, M: 1 << 10, Seed: 1})
	est.Process(s)
	want := g.Eval(2) * 2 // |v_7| = 2, |v_9| = 2
	if util.RelErr(est.Estimate(), want) > 0.05 {
		t.Errorf("quickstart estimate %.4g, want %.4g", est.Estimate(), want)
	}
}

func TestPublicClassifyMatchesVerdictConstants(t *testing.T) {
	cfg := DefaultCheckConfig()
	if c := Classify(F2(), cfg); c.OnePass != Tractable {
		t.Errorf("x² should be Tractable, got %v", c.OnePass)
	}
	if c := Classify(Reciprocal(), cfg); c.OnePass != Intractable {
		t.Errorf("1/x should be Intractable, got %v", c.OnePass)
	}
	if c := Classify(Gnp(), cfg); c.OnePass != OpenNearlyPeriodic {
		t.Errorf("g_np should be OpenNearlyPeriodic, got %v", c.OnePass)
	}
}

func TestPublicTwoPassFlow(t *testing.T) {
	g := SinSqrtX2()
	s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: 2}, 300, 1.1)
	exact := NewExactEstimator(g)
	exact.Process(s)
	two := NewTwoPassEstimator(g, Options{N: s.N(), M: 1 << 10, Seed: 3})
	if util.RelErr(two.Run(s), exact.Estimate()) > 0.3 {
		t.Error("2-pass estimate out of tolerance on unpredictable g")
	}
}

func TestPublicUniversalSketch(t *testing.T) {
	s := stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: 5}, 300, 1.1)
	u := NewUniversalSketch(Options{N: s.N(), M: 1 << 10, Seed: 7, Envelope: 16})
	u.Process(s)
	for _, g := range []Func{F2(), F1(), X2Log()} {
		exact := NewExactEstimator(g)
		exact.Process(s)
		if util.RelErr(u.EstimateFor(g), exact.Estimate()) > 0.3 {
			t.Errorf("universal sketch misestimates %s", g.Name())
		}
	}
}

func TestPublicNormalizeAndNew(t *testing.T) {
	g := Normalize("sqrt", func(x uint64) float64 { return math.Sqrt(float64(x)) })
	if g.Eval(0) != 0 || g.Eval(1) != 1 {
		t.Error("Normalize broke the class-G pins")
	}
	h := New("lin", func(x uint64) float64 { return float64(x) })
	if h.Eval(5) != 5 {
		t.Error("New closure broken")
	}
}

func TestPublicPowerCatalog(t *testing.T) {
	f := func(p8 uint8) bool {
		p := float64(p8%40)/10 + 0.1 // 0.1 .. 4.0
		g := Power(p)
		return g.Eval(0) == 0 && math.Abs(g.Eval(1)-1) < 1e-12 && g.Eval(2) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPublicLEta(t *testing.T) {
	g := LEta(F2(), 1)
	if g.Eval(0) != 0 || math.Abs(g.Eval(1)-1) > 1e-12 {
		t.Error("LEta broke normalization")
	}
	// L_1(x²) = x² log(1+x) / log 2 — grows strictly faster than x².
	if g.Eval(1000) <= F2().Eval(1000) {
		t.Error("LEta should add a logarithmic factor")
	}
}

func TestPublicEstimatorMergeExposed(t *testing.T) {
	g := F2()
	opts := Options{N: 1 << 10, M: 1 << 8, Seed: 11, Lambda: 1.0 / 8}
	a := NewOnePassEstimator(g, opts)
	b := NewOnePassEstimator(g, opts)
	a.Update(1, 10)
	b.Update(2, 20)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if util.RelErr(a.Estimate(), 500) > 0.1 {
		t.Errorf("merged estimate %.4g, want 500", a.Estimate())
	}
}
