package universal

// The BenchmarkDaemonIngest* family gates the daemon ingest transports
// (scripts/benchdiff, alongside the Process/Window/Open/Checkpoint
// families): one iteration pushes the standard 128k-update bench stream
// into a daemon three ways — straight into the server's apply path
// (the no-wire ceiling), over per-batch JSON POSTs to /v1/ingest, and
// over the persistent binary /v1/stream transport through the async
// Pusher. The acceptance bar for the stream transport is ns/op within
// 2x of the in-process ceiling: the wire format exists to make the
// transport disappear from the profile, and this gate keeps it gone.

import (
	"context"
	"net/http/httptest"
	"testing"

	"repro/internal/backend"
	"repro/internal/daemon"
	"repro/internal/engine"
)

// ingestBenchServer builds the standard onepass daemon for the bench
// stream.
func ingestBenchServer(b *testing.B) *daemon.Server {
	b.Helper()
	s := processBenchStream()
	srv, err := daemon.NewServer(backend.Spec{
		Kind: backend.KindOnePass, G: "x^2", Options: processBenchOpts(s)})
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// BenchmarkDaemonIngestInProcess is the no-wire ceiling: the same
// batches the transports carry, applied straight through the server's
// ingest path (state lock + UpdateBatch), no serialization, no socket.
func BenchmarkDaemonIngestInProcess(b *testing.B) {
	s := processBenchStream()
	srv := ingestBenchServer(b)
	updates := s.Updates()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for lo := 0; lo < len(updates); lo += engine.DefaultBatchSize {
			hi := lo + engine.DefaultBatchSize
			if hi > len(updates) {
				hi = len(updates)
			}
			if err := srv.IngestBatch(updates[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchPush measures one full Pusher session per iteration over a live
// loopback daemon: open, push the whole bench stream, flush, close.
func benchPush(b *testing.B, stream bool) {
	b.Helper()
	s := processBenchStream()
	srv := ingestBenchServer(b)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := daemon.NewClient(ts.URL, nil)
	updates := s.Updates()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := c.NewPusher(ctx, daemon.PusherConfig{Stream: stream})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Push(updates); err != nil {
			b.Fatal(err)
		}
		if err := p.Close(); err != nil {
			b.Fatal(err)
		}
		if st := p.Stats(); st.Acked != uint64(len(updates)) {
			b.Fatalf("acked %d of %d", st.Acked, len(updates))
		}
	}
}

// BenchmarkDaemonIngestJSON is the legacy transport: one POST
// /v1/ingest per 4096-update batch, JSON encode/decode on both ends.
func BenchmarkDaemonIngestJSON(b *testing.B) { benchPush(b, false) }

// BenchmarkDaemonIngestStream is the binary transport: one persistent
// hijacked connection, length-prefixed binary frames, per-frame acks.
func BenchmarkDaemonIngestStream(b *testing.B) { benchPush(b, true) }
