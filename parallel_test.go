package universal

// Race and property coverage for the sharded parallel ingestion engine.
// Run with -race: the ProcessParallel tests drive the real worker pool,
// so any unsynchronized shard state shows up here.

import (
	"bytes"
	"testing"

	"repro/internal/heavy"
	"repro/internal/recursive"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/util"
)

// parallelStream keeps the distinct-item count below the candidate
// trackers' capacity, the regime in which serial and parallel estimates
// are guaranteed to agree exactly (see internal/core/parallel.go).
func parallelStream(seed uint64) *Stream {
	return stream.Zipf(stream.GenConfig{N: 1 << 12, M: 1 << 10, Seed: seed}, 90, 1.1)
}

func TestPublicParallelEstimatorMatchesSerialExactly(t *testing.T) {
	g := F2()
	for _, workers := range []int{1, 2, 4, 8} {
		s := parallelStream(7)
		opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 42, Lambda: 1.0 / 16}

		serial := NewOnePassEstimator(g, opts)
		serial.Process(s)

		par := NewParallelEstimator(g, opts, workers)
		if err := par.Process(s); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if a, b := serial.Estimate(), par.Estimate(); a != b {
			t.Errorf("workers=%d: parallel %.17g != serial %.17g", workers, b, a)
		}
	}
}

func TestPublicTwoPassRunParallelMatchesSerialExactly(t *testing.T) {
	g := X2Log()
	s := parallelStream(9)
	opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 4, Lambda: 1.0 / 16}

	serial := NewTwoPassEstimator(g, opts)
	want := serial.Run(s)

	par := NewTwoPassEstimator(g, opts)
	got, err := par.RunParallel(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("parallel two-pass %.17g != serial %.17g", got, want)
	}
}

func TestProcessParallelRaceStress(t *testing.T) {
	// A larger stream across 8 workers; meaningful only under -race,
	// where it sweeps the whole shard/merge machinery for data races.
	g := F2()
	rng := util.NewSplitMix64(12)
	s := NewStream(1 << 16)
	n := 50000
	if testing.Short() {
		n = 5000
	}
	for i := 0; i < n; i++ {
		s.Add(rng.Uint64n(1<<16), rng.Int63n(7)-3)
	}
	opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 3, Lambda: 1.0 / 16}
	par := NewParallelEstimator(g, opts, 8)
	if err := par.Process(s); err != nil {
		t.Fatal(err)
	}
	if est := par.Estimate(); est < 0 {
		t.Errorf("negative estimate %g", est)
	}
}

// --- merge property tests: order-insensitivity and single-shard
// agreement at each layer of the stack -------------------------------------

// chunk3 splits a stream into three contiguous shards.
func chunk3(s *Stream) [3][]Update {
	u := s.Updates()
	a, b := len(u)/3, 2*len(u)/3
	return [3][]Update{u[:a], u[a:b], u[b:]}
}

func TestCountSketchMergeOrderInsensitive(t *testing.T) {
	s := parallelStream(21)
	chunks := chunk3(s)
	mk := func() *sketch.CountSketch {
		return sketch.NewCountSketch(7, 256, util.NewSplitMix64(5))
	}
	build := func(c []Update) *sketch.CountSketch {
		cs := mk()
		cs.UpdateBatch(c)
		return cs
	}

	single := mk()
	for _, c := range chunks {
		single.UpdateBatch(c)
	}
	want, err := single.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for _, order := range [][3]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}} {
		dst := build(chunks[order[0]])
		for _, i := range order[1:] {
			if err := dst.Merge(build(chunks[i])); err != nil {
				t.Fatal(err)
			}
		}
		got, err := dst.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("merge order %v: counters diverge from single-shard ingestion", order)
		}
	}
}

// coversEqual compares two covers entry-wise.
func coversEqual(a, b heavy.Cover) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHeavyOnePassMergeAgreesWithSingleShard(t *testing.T) {
	g := F2()
	s := parallelStream(33)
	chunks := chunk3(s)
	mk := func() *heavy.OnePass {
		return heavy.NewOnePass(heavy.OnePassConfig{
			G: g, Lambda: 1.0 / 16, Eps: 0.25, Delta: 0.2, H: 4,
		}, util.NewSplitMix64(17))
	}

	single := mk()
	for _, c := range chunks {
		single.UpdateBatch(c)
	}
	want := single.Cover()

	for _, order := range [][3]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		shards := [3]*heavy.OnePass{}
		for i, c := range chunks {
			shards[i] = mk()
			shards[i].UpdateBatch(c)
		}
		dst := shards[order[0]]
		for _, i := range order[1:] {
			if err := dst.Merge(shards[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got := dst.Cover(); !coversEqual(want, got) {
			t.Errorf("merge order %v: cover diverges from single-shard ingestion\n got %v\nwant %v",
				order, got, want)
		}
	}
}

func TestRecursiveSketchMergeAgreesWithSingleShard(t *testing.T) {
	g := F2()
	s := parallelStream(44)
	chunks := chunk3(s)
	mk := func() *recursive.Sketch {
		rng := util.NewSplitMix64(23)
		hh := rng.Fork()
		return recursive.New(recursive.Config{
			N:      s.N(),
			Levels: 8,
			MakeSketcher: func(level int) heavy.Sketcher {
				return heavy.NewOnePass(heavy.OnePassConfig{
					G: g, Lambda: 1.0 / 16, Eps: 0.25, Delta: 0.2, H: 4,
				}, hh.Fork())
			},
		}, rng.Fork())
	}

	single := mk()
	for _, c := range chunks {
		single.UpdateBatch(c)
	}
	want := single.Estimate()

	for _, order := range [][3]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
		shards := [3]*recursive.Sketch{}
		for i, c := range chunks {
			shards[i] = mk()
			shards[i].UpdateBatch(c)
		}
		dst := shards[order[0]]
		for _, i := range order[1:] {
			if err := dst.Merge(shards[i]); err != nil {
				t.Fatal(err)
			}
		}
		if got := dst.Estimate(); got != want {
			t.Errorf("merge order %v: estimate %.17g != single-shard %.17g", order, got, want)
		}
	}
}

func TestBatchAndSingleUpdatePathsAgreeThroughPublicAPI(t *testing.T) {
	g := F2()
	s := parallelStream(55)
	opts := Options{N: s.N(), M: 1 << 10, Eps: 0.25, Seed: 6, Lambda: 1.0 / 16}

	one := NewOnePassEstimator(g, opts)
	s.Each(func(u Update) { one.Update(u.Item, u.Delta) })

	batched := NewOnePassEstimator(g, opts)
	batched.UpdateBatch(s.Updates())

	if a, b := one.Estimate(), batched.Estimate(); a != b {
		t.Errorf("batched %.17g != per-update %.17g", b, a)
	}
}
